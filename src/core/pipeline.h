// The A1 -> A4 workflow of Fig. 5.
//
//  A1 vanilla:  conv FE (ReLU features) + FC classifier, full precision.
//  A2 binary features: the FE's last activation becomes a binary sigmoid.
//  A3 teacher:  A2 + an intermediate layer of nc*P binary neurons before the
//               output layer.
//  A4 PoET-BiN: every classifier hidden layer and the intermediate layer are
//               replaced by RINC modules distilled from the teacher's
//               intermediate bits; the sparse output layer is retrained on
//               RINC outputs and quantized to q bits.
//
// The pipeline trains the three networks on one of the synthetic dataset
// families, extracts binary features + intermediate targets from the
// teacher, trains the PoET-BiN student, and reports the four accuracies of
// Table 2.
#pragma once

#include <cstdint>

#include "core/poetbin.h"
#include "data/binarize.h"
#include "data/synthetic.h"
#include "nn/sequential.h"

namespace poetbin {

struct NetworkConfig {
  std::size_t conv1_channels = 12;
  std::size_t conv2_channels = 32;  // 32 channels x 4x4 = 512 binary features
  std::size_t hidden_dim = 256;
  double learning_rate = 3e-3;
  TrainConfig train;  // epochs, batch size, loss, lr decay
};

struct PipelineConfig {
  SyntheticSpec data;          // family + total example count + seed
  std::size_t n_train = 2000;  // first n_train examples after shuffling
  std::size_t n_test = 800;
  NetworkConfig net;
  PoetBinConfig poetbin;
  std::uint64_t seed = 42;
  bool verbose = false;
  // Skip training the A1 vanilla network (A1 is a reporting baseline; the
  // teacher and student never read it). When skipped, `a1` is reported as
  // NaN — deploy loops like poetbin_cli turn this off to train only what
  // ships.
  bool train_a1_network = true;
  // Skip training the A2-only network (A2 is diagnostic; the teacher
  // subsumes it). When skipped, `a2` is reported as NaN.
  bool train_a2_network = true;
  // SS4.1 ablation support: give the teacher's *hidden* layer a binary
  // sigmoid too and export its bits, so RINC modules can be trained per
  // hidden neuron instead of per intermediate neuron.
  bool binary_hidden = false;
};

struct PipelineResult {
  double a1 = 0.0;  // vanilla test accuracy
  double a2 = 0.0;  // binary-feature network test accuracy
  double a3 = 0.0;  // teacher test accuracy
  double a4 = 0.0;  // PoET-BiN test accuracy

  // How often the RINC bank reproduces the teacher's intermediate bits.
  double fidelity_train = 0.0;
  double fidelity_test = 0.0;

  PoetBin model;

  // Binary features (teacher FE outputs) for both splits — baselines train
  // on exactly these, mirroring the paper's shared-feature-extractor setup.
  BinaryDataset train_bits;
  BinaryDataset test_bits;

  // Teacher intermediate-layer bits (distillation targets / diagnostics).
  BitMatrix teacher_train_bits;
  BitMatrix teacher_test_bits;

  // Teacher hidden-layer bits; populated only when config.binary_hidden.
  BitMatrix hidden_train_bits;
  BitMatrix hidden_test_bits;
};

PipelineResult run_pipeline(const PipelineConfig& config);

// Paper-architecture presets (Table 1), mapped onto the synthetic families:
//   M1 (MNIST -> digits):        P=8, RINC-2, 32 DTs, q=8
//   C1 (CIFAR-10 -> textures):   P=8, RINC-2, 40 DTs, q=8
//   S1 (SVHN -> house_numbers):  P=6, RINC-2, 36 DTs, q=8
// `scale` multiplies the default train/test sizes (1.0 = bench default).
PipelineConfig preset_m1(double scale = 1.0);
PipelineConfig preset_c1(double scale = 1.0);
PipelineConfig preset_s1(double scale = 1.0);

}  // namespace poetbin
