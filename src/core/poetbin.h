// PoET-BiN classifier: nc x P RINC modules emulating the teacher's
// intermediate layer, followed by the sparsely connected, q-bit quantized
// output layer (§2.2).
//
// Each output neuron is wired to exactly P intermediate bits (the block of
// RINC modules distilled for its class), so its real-valued activation is a
// function of P bits and is realised in hardware as q LUTs of P inputs.
// The output layer is retrained on the RINC outputs (not the teacher bits),
// which is what lets the network adapt to RINC prediction noise — the
// effect behind the paper's CIFAR-10 accuracy *gain* at stage A4.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/rinc.h"
#include "nn/quantize.h"
#include "util/bit_matrix.h"
#include "util/word_storage.h"

namespace poetbin {

class BatchEngine;  // core/batch_eval.h

// Fraction of predictions matching their labels (0.0 for an empty set).
// Sizes must agree. The single scoring convention behind PoetBin::accuracy,
// BatchEngine::accuracy and Runtime::accuracy.
double prediction_accuracy(const std::vector<int>& predictions,
                           const std::vector<int>& labels);

struct OutputLayerConfig {
  int quant_bits = 8;          // q
  std::size_t epochs = 200;    // full-batch gradient steps
  double learning_rate = 0.05;
  double lr_decay = 0.99;
  std::uint64_t seed = 11;
  // Word-parallel retraining: the squared-hinge active set is computed 64
  // examples per word op (the per-example activation/compare disappears
  // into per-combo tables + two lut_reduce passes on the active SIMD
  // backend), saturated examples are skipped for free, and classes spread
  // across the BatchEngine pool. Bit-identical weights/codes to the scalar
  // path — the gradient adds themselves stay in ascending example order —
  // at any thread count and on every backend; the scalar loop stays
  // in-tree as the oracle.
  bool word_parallel = true;
};

struct PoetBinConfig {
  RincConfig rinc;
  std::size_t n_classes = 10;
  OutputLayerConfig output;
  // Worker threads for distilling the nc x P RINC modules (they are
  // independent problems, so parallel training is deterministic).
  // 0 = std::thread::hardware_concurrency().
  std::size_t threads = 0;
  bool verbose = false;
};

// One sparsely connected output neuron: float weights for training, plus the
// quantized 2^P-entry activation table that ships to hardware.
struct SparseOutputNeuron {
  std::vector<std::size_t> input_modules;  // indices into the RINC bank
  std::vector<float> weights;              // size P
  float bias = 0.0f;
  std::vector<std::uint32_t> codes;        // 2^P quantized activations

  float activation(std::size_t combo) const;
};

class PoetBin {
 public:
  PoetBin() = default;

  // `intermediate_targets` holds the teacher's intermediate-layer bits
  // (n x nc*P) used to distil one RINC module per column; `labels` are the
  // true classes used to retrain the output layer on the RINC outputs.
  static PoetBin train(const BitMatrix& features,
                       const BitMatrix& intermediate_targets,
                       const std::vector<int>& labels,
                       const PoetBinConfig& config);

  // Reconstruction from stored artefacts (deserialization). Validates the
  // nc x P wiring and code-table sizes.
  static PoetBin from_parts(PoetBinConfig config,
                            std::vector<RincModule> modules,
                            std::vector<SparseOutputNeuron> output_neurons,
                            QuantizerParams quantizer);

  // Reconstruction with externally supplied code bit-planes and a storage
  // keepalive: the packed-model loader passes planes that view the file
  // mapping (and modules whose LUT splats do too), plus the handle that
  // keeps the mapping alive for the model's lifetime — copies of the model
  // share it. `code_planes` must hold nc x n_planes x 2^P words laid out
  // [neuron][plane][combo]; the loader verifies they match the codes bit
  // for bit before trusting them (sizes are validated here).
  static PoetBin from_parts(PoetBinConfig config,
                            std::vector<RincModule> modules,
                            std::vector<SparseOutputNeuron> output_neurons,
                            QuantizerParams quantizer,
                            WordStorage code_planes, std::size_t n_planes,
                            std::shared_ptr<const void> storage_keepalive);

  std::size_t n_classes() const { return output_.size(); }
  std::size_t n_modules() const { return modules_.size(); }
  std::size_t lut_inputs() const { return config_.rinc.lut_inputs; }
  int quant_bits() const { return config_.output.quant_bits; }

  const std::vector<RincModule>& modules() const { return modules_; }
  const std::vector<SparseOutputNeuron>& output_neurons() const { return output_; }
  const QuantizerParams& quantizer() const { return quantizer_; }

  // Input feature width the model serves: highest referenced feature
  // index + 1 (the model stores wiring, not a width — this is the single
  // derivation rule the netlist exporter and the network server share).
  std::size_t n_features() const;

  // Output-layer code bit-planes, precomputed for the fused argmax: plane
  // `q` of neuron `c` is the 2^P-entry splat of bit q of c's codes, ready
  // for the same Shannon-reduction kernel the LUT layers use. Maintained
  // by from_parts/retrain_output_layer; a packed model maps them straight
  // from the file. code_plane_count() is bit_width of the largest code
  // (>= 1 whenever the output layer exists).
  std::size_t code_plane_count() const { return n_code_planes_; }
  const std::uint64_t* code_plane(std::size_t neuron,
                                  std::size_t plane) const {
    return code_planes_.data() +
           (neuron * n_code_planes_ + plane) * (std::size_t{1} << lut_inputs());
  }

  // Intermediate bits produced by the RINC bank (n x nc*P).
  BitMatrix rinc_outputs(const BitMatrix& features) const;

  int predict(const BitVector& example_bits) const;
  std::vector<int> predict_dataset(const BitMatrix& features) const;
  double accuracy(const BitMatrix& features, const std::vector<int>& labels) const;

  // The scalar output-layer argmax over an already-materialized RINC bank
  // (n x >= nc*P). predict_dataset is rinc_outputs + this; the fused word
  // pass and the Runtime's non-fused path must both match it bit for bit.
  std::vector<int> predict_from_rinc_bits(const BitMatrix& rinc_bits) const;

  // Word-parallel (bitsliced + threaded) equivalents, bit-identical to the
  // scalar paths above, running on a caller-supplied persistent engine.
  BitMatrix rinc_outputs_batched(const BitMatrix& features,
                                 const BatchEngine& engine) const;
  std::vector<int> predict_dataset_batched(const BitMatrix& features,
                                           const BatchEngine& engine) const;
  double accuracy_batched(const BitMatrix& features,
                          const std::vector<int>& labels,
                          const BatchEngine& engine) const;

  // Fraction of intermediate bits where RINC output matches the teacher
  // target (diagnostic for distillation quality).
  static double intermediate_fidelity(const BitMatrix& rinc_bits,
                                      const BitMatrix& teacher_bits);

  // Total LUT count before 8->6 decomposition: RINC LUTs + q per output
  // neuron (the paper's q x nc output-layer cost).
  std::size_t lut_count() const;

  // (Re)fits the sparse output layer + shared quantizer on a bank of RINC
  // output bits (n x >= nc*P; neuron c reads columns [c*P, (c+1)*P)) against
  // the true labels, from the seeded init — the paper's A4 adaptation step,
  // exposed so a deployed model can re-adapt to new data without
  // re-distilling the RINC bank. Validates the label range and bank width.
  // `engine`, when non-null, spreads classes across its pool (gradients are
  // block-local per class, so any thread count is bit-identical);
  // OutputLayerConfig.word_parallel picks the bitsliced or the scalar
  // oracle path, which match bit for bit.
  void retrain_output_layer(const BitMatrix& rinc_bits,
                            const std::vector<int>& labels,
                            const BatchEngine* engine = nullptr);

 private:
  // Recomputes code_planes_/n_code_planes_ from the current codes (heap
  // storage). Called whenever the output layer changes.
  void rebuild_code_planes();

  PoetBinConfig config_;
  std::vector<RincModule> modules_;        // nc * P, module j targets column j
  std::vector<SparseOutputNeuron> output_; // nc neurons
  QuantizerParams quantizer_;              // shared scale -> comparable codes
  WordStorage code_planes_;                // nc x n_planes x 2^P words
  std::size_t n_code_planes_ = 0;
  // Non-null when modules_/code_planes_ view a packed-model mapping; keeps
  // the mapping alive for this model and every copy of it.
  std::shared_ptr<const void> storage_keepalive_;
};

}  // namespace poetbin
