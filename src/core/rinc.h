// RINC: Reduced Input Neural Circuit (the paper's §2.1).
//
// A RINC-0 is one level-wise DT == one P-input LUT. A RINC-l (l >= 1) boosts
// up to P RINC-(l-1) children with discrete Adaboost and combines their
// output bits in a MAT LUT (Algorithm 2's hierarchical Adaboost). A RINC-L
// therefore sees up to P^(L+1) of the binary input features while every
// internal operation — tree lookup and boosted combination alike — is a
// single LUT access.
//
// The number of leaf DTs need not be the full P^L: the paper's MNIST config
// uses 32 DTs with P=8 (4 subgroups of 8). `RincConfig::total_dts` controls
// the leaf budget; children are filled greedily P^(l-1) at a time.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "boost/adaboost.h"
#include "boost/mat.h"
#include "dt/level_dt.h"
#include "dt/lut.h"
#include "util/bit_matrix.h"
#include "util/bitvector.h"

namespace poetbin {

class BatchEngine;  // core/batch_eval.h

struct RincConfig {
  std::size_t lut_inputs = 6;  // P: LUT arity (tree depth and max MAT fanin)
  std::size_t levels = 2;      // L: 0 = bare LevelDT, 1 = one Adaboost layer...
  std::size_t total_dts = 36;  // leaf DT budget; clamped to P^L
  AdaboostConfig adaboost;     // epsilon clamping etc. (n_rounds is derived)
  // Word-parallel training: bitsliced LevelDT entropy scans, word-parallel
  // Adaboost error/reweight loops and bitsliced weak-learner dataset passes.
  // The same toggle the inference side exposes as the batch engine; results
  // are bit-identical to the scalar paths (see LevelDtConfig/AdaboostConfig).
  bool word_parallel_training = true;
};

class RincModule {
 public:
  RincModule() = default;

  // Trains a RINC-`config.levels` on binary `features` against the binary
  // `targets`, starting from `weights` (empty = uniform). The weights thread
  // through the recursive Adaboost exactly as Algorithm 2 prescribes.
  // `engine`, when non-null, parallelises the LevelDT candidate scans over
  // its thread pool (identical results at any thread count); leave it null
  // when modules are already trained in parallel, as PoetBin::train does.
  static RincModule train(const BitMatrix& features, const BitVector& targets,
                          std::span<const double> weights,
                          const RincConfig& config,
                          const BatchEngine* engine = nullptr);

  // Reconstruction from stored artefacts (deserialization, hand-built
  // modules in tests). Children must all have the same level.
  static RincModule make_leaf(Lut lut);
  static RincModule make_internal(std::vector<RincModule> children,
                                  MatModule mat);
  // Reconstruction with a prebuilt MAT LUT (the packed-model loader passes
  // a table whose splat words view the file mapping, skipping the 2^fanin
  // to_table() enumeration). `mat_lut` must have fanin zero-filled inputs
  // and a 2^fanin table equal to mat.to_table() — the loader's checksum
  // covers that equality; sizes are validated here.
  static RincModule make_internal(std::vector<RincModule> children,
                                  MatModule mat, Lut mat_lut);

  bool is_leaf() const { return children_.empty(); }
  std::size_t level() const;
  std::size_t fanin() const {
    return is_leaf() ? leaf_.arity() : children_.size();
  }

  const Lut& leaf_lut() const;          // valid only for RINC-0
  const MatModule& mat() const;         // valid only for level >= 1
  const Lut& mat_lut() const;           // MAT encoded as a LUT (level >= 1)
  const std::vector<RincModule>& children() const { return children_; }

  bool eval(const BitVector& example_bits) const;
  BitVector eval_dataset(const BitMatrix& features) const;

  // Bitsliced dataset pass (64 examples per word op, the whole hierarchy
  // evaluated as a DAG of word muxes). Bit-identical to eval_dataset;
  // defined in core/batch_eval.cpp. Use a BatchEngine for the threaded
  // version.
  BitVector eval_dataset_batched(const BitMatrix& features) const;

  // --- structural queries used by the hardware model and tests ---

  // Total number of LUTs (leaf DTs + all MAT modules), before any 8->6
  // decomposition: equals (P^(L+1)-1)/(P-1) for a full tree.
  std::size_t lut_count() const;
  std::size_t leaf_dt_count() const;
  // LUT levels on the critical path (1 for RINC-0, L+1 for a full RINC-L).
  std::size_t depth_in_luts() const;
  // Distinct input features referenced anywhere in the module.
  std::vector<std::size_t> distinct_features() const;
  // Leaf LUTs in deterministic (depth-first) order.
  std::vector<const Lut*> leaf_luts() const;

  double train_error() const { return train_error_; }

 private:
  // Leaf payload (level 0).
  Lut leaf_;
  // Internal payload (level >= 1).
  std::vector<RincModule> children_;
  MatModule mat_;
  Lut mat_lut_;  // inputs() is empty (the fanins are child modules, not features)
  double train_error_ = 0.0;

  void collect_features(std::vector<bool>& seen, std::size_t n_features) const;
  void collect_leaves(std::vector<const Lut*>& out) const;
  static RincModule train_impl(const BitMatrix& features, const BitVector& targets,
                               std::span<const double> weights,
                               const RincConfig& config, std::size_t level,
                               std::size_t dt_budget,
                               const BatchEngine* engine);
};

// Closed-form LUT count of a *full* RINC-L: (P^(L+1)-1)/(P-1), the formula
// of §2.1.3. Exposed for tests and the area model.
std::size_t full_rinc_lut_count(std::size_t lut_inputs, std::size_t levels);

}  // namespace poetbin
