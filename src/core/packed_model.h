// Versioned, 64-byte-aligned binary packed model format with mmap loading.
//
// The text format (core/serialize.h) is the debuggable interchange form; a
// serving fleet wants the opposite trade: a worker should map a model in
// and serve, with no parsing and no per-LUT heap reconstruction. The packed
// format lays the data out exactly the way the eval kernels consume it —
// splatted LUT truth tables (one word per entry) and output-layer code
// bit-planes — so the loader hands the kernels pointers INTO the read-only
// file mapping (util/word_storage.h views) instead of copying. Truth tables
// are stored twice: splatted for the word kernels, and compact (one bit per
// entry, kTables) for the loader — building the in-memory skeleton off the
// compact copy means a fast load never reads the splat section at all; its
// pages fault in lazily at the first word-parallel eval.
//
// Load-time validation comes in two depths (PackedVerify):
//   kFull (default)  — header/section structure, CRC32 over the payload,
//     and semantic cross-checks (splat purity + splat/table agreement, MAT
//     table consistency, code/plane agreement). O(file); what pack/unpack
//     tooling and the tests run.
//   kTrustChecksum   — structure and the cheap semantic checks only; skips
//     the CRC pass and every splat-section read, trusting the producer's
//     checksum. O(metadata); what serving loads (Runtime::load) run, and
//     what makes a packed load orders of magnitude faster than a text
//     parse. Content corruption inside the splat section goes undetected
//     until it changes predictions — push through pack (which re-verifies)
//     when that matters.
// Either way a well-formed file loads bit-identical to the same model
// loaded from text — every eval path, every backend.
//
// Layout (all integers little-endian; the format is declared LE-only and
// loaders reject big-endian hosts rather than byte-swapping):
//
//   header (64 bytes):
//     0  char[8]  magic "PoETBiNP"
//     8  u32      format version (2; version-1 files still load)
//     12 u32      header bytes (64)
//     16 u32      section count
//     20 u32      CRC32 (IEEE) over file[64, file_size)
//     24 u64      file size in bytes
//     32 ...      zero reserved
//   section table (24 bytes per entry, immediately after the header):
//     u32 id, u32 reserved, u64 payload offset, u64 payload length
//   payloads: each section's offset is 64-byte aligned; splat tables are
//   additionally aligned to 8-word boundaries inside kSplat.
//
// Sections: config scalars, quantizer, pre-order node records (leaf/MAT),
// leaf input indices, MAT weights, splat words, output wiring/weights/
// codes, the precomputed code bit-planes of the fused argmax, and the
// compact truth-table bits (pre-order, each table padded to whole words).
// Version 2 adds a conv-config section (8 u64 scalars: input shape, output
// channels, kernel, stride, padding, conv node count). A zero-length
// conv-config section means a dense model; otherwise the per-channel conv
// module trees ride the SAME node/splat/table sections, appended pre-order
// after the classifier trees, so conv LUTs get the identical dual (splat +
// compact) storage and a kTrustChecksum load never pages their splats
// either. Version-1 files parse as dense models unchanged.
//
// Error contract matches the text loader: kFileNotFound, kVersionMismatch
// (bad magic or version), kCorruptSection (truncation, misalignment,
// out-of-range contents), kChecksumMismatch (CRC), each as a typed
// ModelIoError — malformed bytes never abort a loading process.
#pragma once

#include <memory>
#include <string>

#include "core/poetbin.h"
#include "core/rinc_conv.h"
#include "core/serialize.h"

namespace poetbin {

// Which on-disk representation a model came from (or should go to).
enum class ModelFormat {
  kText,    // core/serialize.h line format
  kPacked,  // this header's binary format
};

const char* model_format_name(ModelFormat format);

// How deep read_packed_model_file validates (see the header comment).
enum class PackedVerify {
  kFull,           // structure + CRC + content cross-checks; O(file)
  kTrustChecksum,  // structure + cheap checks; never reads the splats
};

// Writes `model` in the packed format. kWriteFailed on I/O trouble. The
// write is an atomic publish (same-directory temp file + rename): pushing
// over a file that serving workers have mapped never truncates their inode
// — they keep serving the old bytes until their next reload. Third-party
// pushers must follow the same rule; overwriting a mapped packed file in
// place SIGBUSes its readers.
IoStatus write_packed_model_file(const PoetBin& model,
                                 const std::string& path);

// Packs a convolutional model (conv layer + classifier) in the same file,
// same atomic-publish contract. Loaded back through read_model_file_any.
IoStatus write_packed_conv_model_file(const ConvModel& model,
                                      const std::string& path);

// Maps and validates a packed model file. The returned model's LUT splats
// and code bit-planes view the mapping, which stays alive (shared) for the
// model's lifetime and every copy of it. Returns kIncompatibleModel for a
// packed *conv* model — this entry point's contract is a dense PoetBin;
// conv files load through read_model_file_any.
IoResult<PoetBin> read_packed_model_file(
    const std::string& path, PackedVerify verify = PackedVerify::kFull);

// Cheap magic sniff: true when the file starts with the packed magic.
// false for text models, short files, or unreadable paths.
bool is_packed_model_file(const std::string& path);

// A loaded model plus the format it was read in. `conv`, when non-null, is
// a convolutional front end whose flattened output feeds `model` (the
// layer holds the mapping keepalive its LUTs view); null means a dense
// model whose features are the wire features.
struct LoadedModel {
  PoetBin model;
  ModelFormat format = ModelFormat::kText;
  std::shared_ptr<const RincConvLayer> conv;
};

// Format-sniffing loader: packed files go through the mmap path (at the
// given verify depth), text files through the dense or conv text parser
// (by header line). The error comes from whichever loader ran.
IoResult<LoadedModel> read_model_file_any(
    const std::string& path, PackedVerify verify = PackedVerify::kFull);

}  // namespace poetbin
