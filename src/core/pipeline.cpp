#include "core/pipeline.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "nn/conv.h"
#include "serve/runtime.h"

namespace poetbin {

namespace {

// Indices of the layers whose activations the pipeline extracts.
struct BuiltNetwork {
  Sequential net;
  std::size_t feature_layer = 0;       // FE output (after final pool)
  std::size_t hidden_layer = 0;        // post-activation hidden layer
  std::size_t intermediate_layer = 0;  // teacher only: BinarySigmoid output
};

enum class FeActivation { kRelu, kBinarySigmoid };

// FE: conv -> ReLU -> pool -> conv -> act -> pool. With a binary act the
// max-pool of {0,1} values stays binary, so the FE output is the paper's
// binary feature vector.
BuiltNetwork build_network(const PipelineConfig& config, FeActivation fe_act,
                           bool with_intermediate, Rng& rng) {
  const ImageDataset probe = make_synthetic(
      {config.data.family, 1, config.data.seed, config.data.noise});
  const Shape3 input_shape{probe.channels, probe.height, probe.width};

  BuiltNetwork built;
  Sequential& net = built.net;

  auto& conv1 = net.add<Conv2d>(input_shape, config.net.conv1_channels,
                                /*kernel=*/3, /*stride=*/1, /*padding=*/1, rng);
  net.add<Relu>();
  auto& pool1 = net.add<MaxPool2d>(conv1.output_shape(), /*pool=*/2);
  auto& conv2 = net.add<Conv2d>(pool1.output_shape(), config.net.conv2_channels,
                                /*kernel=*/3, /*stride=*/1, /*padding=*/1, rng);
  if (fe_act == FeActivation::kRelu) {
    net.add<Relu>();
  } else {
    net.add<BinarySigmoid>();
  }
  net.add<MaxPool2d>(conv2.output_shape(), /*pool=*/2);
  built.feature_layer = net.n_layers() - 1;

  const std::size_t feature_dim =
      MaxPool2d(conv2.output_shape(), 2).output_shape().flat();
  const std::size_t n_classes = 10;
  const std::size_t intermediate_dim =
      n_classes * config.poetbin.rinc.lut_inputs;

  net.add<Dense>(feature_dim, config.net.hidden_dim, rng);
  net.add<BatchNorm>(config.net.hidden_dim);
  if (config.binary_hidden && with_intermediate) {
    net.add<BinarySigmoid>();
  } else {
    net.add<Relu>();
  }
  built.hidden_layer = net.n_layers() - 1;
  if (with_intermediate) {
    net.add<Dense>(config.net.hidden_dim, intermediate_dim, rng);
    net.add<BinarySigmoid>();
    built.intermediate_layer = net.n_layers() - 1;
    // Sparse output wiring (Fig. 4): class c reads only its own P-bit block
    // of the intermediate layer, so the blocks specialise per class — the
    // property the student's LUT output layer depends on.
    net.add<BlockSparseDense>(n_classes, config.poetbin.rinc.lut_inputs, rng);
  } else {
    net.add<Dense>(config.net.hidden_dim, n_classes, rng);
  }
  return built;
}

double train_and_score(Sequential& net, const Matrix& train_x,
                       const std::vector<int>& train_y, const Matrix& test_x,
                       const std::vector<int>& test_y,
                       const PipelineConfig& config) {
  Adam adam(config.net.learning_rate);
  TrainConfig train_config = config.net.train;
  train_config.verbose = config.verbose;
  net.fit(train_x, train_y, adam, train_config);
  return net.evaluate_accuracy(test_x, test_y);
}

BitMatrix extract_bits(Sequential& net, const Matrix& inputs,
                       std::size_t layer_index) {
  const Matrix activations = net.activations_at(inputs, layer_index);
  // FE outputs pass through BinarySigmoid (values exactly 0/1); threshold at
  // 0.5 is robust to any float representation.
  return binarize_activations(activations.vec(), activations.rows(),
                              activations.cols(), 0.5f);
}

}  // namespace

PipelineResult run_pipeline(const PipelineConfig& config) {
  PipelineResult result;
  Rng rng(config.seed);

  // --- data ---
  SyntheticSpec spec = config.data;
  spec.n_examples = config.n_train + config.n_test;
  ImageDataset all = make_synthetic(spec);
  Rng shuffle_rng = rng.fork(1);
  shuffle_dataset(all, shuffle_rng);
  auto [train_set, test_set] = split_dataset(all, config.n_train);

  const Matrix train_x = images_to_matrix(train_set);
  const Matrix test_x = images_to_matrix(test_set);
  const std::vector<int>& train_y = train_set.labels;
  const std::vector<int>& test_y = test_set.labels;

  // Baseline init streams are drawn unconditionally: fork() advances the
  // parent stream, so drawing them inside the skip conditionals would give
  // the A3 teacher (and therefore the A4 student) a different stream
  // depending on which reporting baselines are trained — and a model
  // trained with baselines on could never be re-evaluated against
  // regenerated features with them off.
  Rng init_a1 = rng.fork(2);
  Rng init_a2 = rng.fork(3);

  // --- A1: vanilla network ---
  if (config.train_a1_network) {
    if (config.verbose) std::printf("[pipeline] training A1 (vanilla)\n");
    BuiltNetwork a1 = build_network(config, FeActivation::kRelu,
                                    /*with_intermediate=*/false, init_a1);
    result.a1 =
        train_and_score(a1.net, train_x, train_y, test_x, test_y, config);
  } else {
    result.a1 = std::numeric_limits<double>::quiet_NaN();
  }

  // --- A2: binary feature representation network ---
  if (config.train_a2_network) {
    if (config.verbose) std::printf("[pipeline] training A2 (binary features)\n");
    BuiltNetwork a2 = build_network(config, FeActivation::kBinarySigmoid,
                                    /*with_intermediate=*/false, init_a2);
    result.a2 =
        train_and_score(a2.net, train_x, train_y, test_x, test_y, config);
  } else {
    result.a2 = std::numeric_limits<double>::quiet_NaN();
  }

  // --- A3: teacher network (binary features + binary intermediate layer) ---
  if (config.verbose) std::printf("[pipeline] training A3 (teacher)\n");
  Rng init_a3 = rng.fork(4);
  BuiltNetwork teacher = build_network(config, FeActivation::kBinarySigmoid,
                                       /*with_intermediate=*/true, init_a3);
  result.a3 =
      train_and_score(teacher.net, train_x, train_y, test_x, test_y, config);

  // --- feature + target extraction from the teacher ---
  result.train_bits.features =
      extract_bits(teacher.net, train_x, teacher.feature_layer);
  result.train_bits.labels = train_y;
  result.train_bits.n_classes = 10;
  result.test_bits.features =
      extract_bits(teacher.net, test_x, teacher.feature_layer);
  result.test_bits.labels = test_y;
  result.test_bits.n_classes = 10;

  result.teacher_train_bits =
      extract_bits(teacher.net, train_x, teacher.intermediate_layer);
  result.teacher_test_bits =
      extract_bits(teacher.net, test_x, teacher.intermediate_layer);

  if (config.binary_hidden) {
    result.hidden_train_bits =
        extract_bits(teacher.net, train_x, teacher.hidden_layer);
    result.hidden_test_bits =
        extract_bits(teacher.net, test_x, teacher.hidden_layer);
  }

  // --- A4: PoET-BiN student ---
  if (config.verbose) std::printf("[pipeline] training A4 (PoET-BiN)\n");
  result.model = PoetBin::train(result.train_bits.features,
                                result.teacher_train_bits, train_y,
                                config.poetbin);
  // All student-side dataset passes go through the serving runtime: one
  // persistent engine, bitsliced word passes bit-identical to the scalar
  // reference (64 examples per word op, fused output-layer argmax).
  const Runtime runtime(result.model, {.threads = config.poetbin.threads});
  result.a4 = runtime.accuracy(result.test_bits.features, test_y);

  result.fidelity_train = PoetBin::intermediate_fidelity(
      runtime.rinc_outputs(result.train_bits.features),
      result.teacher_train_bits);
  result.fidelity_test = PoetBin::intermediate_fidelity(
      runtime.rinc_outputs(result.test_bits.features),
      result.teacher_test_bits);
  return result;
}

namespace {

PipelineConfig base_preset(SyntheticFamily family, std::size_t lut_inputs,
                           std::size_t n_dts, double scale,
                           std::uint64_t seed) {
  PipelineConfig config;
  config.data.family = family;
  config.data.seed = seed;
  config.n_train = static_cast<std::size_t>(2000 * scale);
  config.n_test = static_cast<std::size_t>(800 * scale);
  config.net.train.epochs = 8;
  config.net.train.batch_size = 64;
  config.poetbin.rinc.lut_inputs = lut_inputs;
  config.poetbin.rinc.levels = 2;
  config.poetbin.rinc.total_dts = n_dts;
  config.poetbin.output.quant_bits = 8;
  config.seed = seed;
  return config;
}

}  // namespace

PipelineConfig preset_m1(double scale) {
  return base_preset(SyntheticFamily::kDigits, /*P=*/8, /*DTs=*/32, scale, 101);
}

PipelineConfig preset_c1(double scale) {
  PipelineConfig config =
      base_preset(SyntheticFamily::kTextures, /*P=*/8, /*DTs=*/40, scale, 103);
  config.net.train.epochs = 10;  // hardest family, give it a little longer
  return config;
}

PipelineConfig preset_s1(double scale) {
  return base_preset(SyntheticFamily::kHouseNumbers, /*P=*/6, /*DTs=*/36, scale,
                     102);
}

}  // namespace poetbin
