// Loss functions.
//
// The paper trains all vanilla/teacher networks with the multi-class squared
// hinge loss (as in BinaryNet); cross-entropy is provided for the NDF
// baseline and output-layer retraining.
#pragma once

#include <vector>

#include "nn/matrix.h"

namespace poetbin {

struct LossResult {
  double value = 0.0;  // mean loss over the batch
  Matrix grad;         // dLoss/dLogits, already divided by batch size
};

// Multi-class squared hinge: targets are +1 for the true class, -1 otherwise;
// loss = mean_i sum_c max(0, 1 - t_ic * y_ic)^2.
LossResult squared_hinge_loss(const Matrix& logits, const std::vector<int>& labels);

// Softmax followed by negative log-likelihood.
LossResult cross_entropy_loss(const Matrix& logits, const std::vector<int>& labels);

// Row-wise softmax (stable); exposed for the NDF baseline.
Matrix softmax(const Matrix& logits);

// Row-wise argmax -> predicted labels.
std::vector<int> argmax_rows(const Matrix& logits);

double accuracy(const std::vector<int>& predicted, const std::vector<int>& labels);

}  // namespace poetbin
