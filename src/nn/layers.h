// Layer abstraction and the dense/activation/normalisation layers used by
// the vanilla network (A1), the teacher network (A3) and the baselines.
//
// Layers process mini-batches stored as (batch x features) matrices and
// cache whatever the backward pass needs. `BinarySigmoid` implements the
// Kwan (1992) hard binary activation with a straight-through estimator,
// which is what the paper inserts to obtain binary features (A2) and the
// binary intermediate layer (A3).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.h"
#include "util/rng.h"

namespace poetbin {

// A trainable tensor together with its gradient accumulator.
struct Param {
  Matrix value;
  Matrix grad;

  explicit Param(Matrix v) : value(std::move(v)), grad(value.rows(), value.cols()) {}
  void zero_grad() { grad.fill(0.0f); }
};

class Layer {
 public:
  virtual ~Layer() = default;

  // `train` toggles behaviours like batch-norm statistics and dropout.
  virtual Matrix forward(const Matrix& input, bool train) = 0;
  // Receives dLoss/dOutput, accumulates parameter grads, returns dLoss/dInput.
  virtual Matrix backward(const Matrix& grad_output) = 0;

  virtual void collect_params(std::vector<Param*>& out) { (void)out; }
  virtual std::string name() const = 0;
};

class Dense : public Layer {
 public:
  Dense(std::size_t in_dim, std::size_t out_dim, Rng& rng);

  Matrix forward(const Matrix& input, bool train) override;
  Matrix backward(const Matrix& grad_output) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return "Dense"; }

  const Param& weights() const { return weights_; }
  Param& weights() { return weights_; }
  const Param& bias() const { return bias_; }
  Param& bias() { return bias_; }
  std::size_t in_dim() const { return weights_.value.rows(); }
  std::size_t out_dim() const { return weights_.value.cols(); }

 private:
  Param weights_;  // (in x out)
  Param bias_;     // (1 x out)
  Matrix cached_input_;
};

class Relu : public Layer {
 public:
  Matrix forward(const Matrix& input, bool train) override;
  Matrix backward(const Matrix& grad_output) override;
  std::string name() const override { return "Relu"; }

 private:
  Matrix cached_input_;
};

// Hard binary activation: forward emits {0,1} = [x >= 0]; backward uses the
// straight-through estimator gated to |x| <= 1 (the derivative of the
// clipped hard sigmoid), following the BinaryNet training recipe.
class BinarySigmoid : public Layer {
 public:
  Matrix forward(const Matrix& input, bool train) override;
  Matrix backward(const Matrix& grad_output) override;
  std::string name() const override { return "BinarySigmoid"; }

 private:
  Matrix cached_input_;
};

// Per-feature batch normalisation with running statistics for inference.
class BatchNorm : public Layer {
 public:
  explicit BatchNorm(std::size_t dim, float momentum = 0.9f, float epsilon = 1e-5f);

  Matrix forward(const Matrix& input, bool train) override;
  Matrix backward(const Matrix& grad_output) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return "BatchNorm"; }

 private:
  Param gamma_;
  Param beta_;
  Matrix running_mean_;  // (1 x dim)
  Matrix running_var_;   // (1 x dim)
  float momentum_;
  float epsilon_;

  // Backward-pass caches (training batches only).
  Matrix cached_normalized_;
  Matrix cached_inv_std_;  // (1 x dim)
};

// Sparsely connected output layer (paper Fig. 4): output neuron j reads only
// inputs [j*block_size, (j+1)*block_size). Used as the teacher's output
// layer so that each intermediate-layer block specialises for its class —
// the property the PoET-BiN student's LUT output layer relies on.
class BlockSparseDense : public Layer {
 public:
  BlockSparseDense(std::size_t n_blocks, std::size_t block_size, Rng& rng);

  Matrix forward(const Matrix& input, bool train) override;
  Matrix backward(const Matrix& grad_output) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return "BlockSparseDense"; }

  std::size_t n_blocks() const { return n_blocks_; }
  std::size_t block_size() const { return block_size_; }
  // Compact weights: (n_blocks x block_size).
  const Param& weights() const { return weights_; }
  const Param& bias() const { return bias_; }

 private:
  std::size_t n_blocks_;
  std::size_t block_size_;
  Param weights_;  // (n_blocks x block_size)
  Param bias_;     // (1 x n_blocks)
  Matrix cached_input_;
};

class Dropout : public Layer {
 public:
  Dropout(double rate, Rng& rng);

  Matrix forward(const Matrix& input, bool train) override;
  Matrix backward(const Matrix& grad_output) override;
  std::string name() const override { return "Dropout"; }

 private:
  double rate_;
  Rng rng_;
  Matrix mask_;
};

}  // namespace poetbin
