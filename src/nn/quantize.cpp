#include "nn/quantize.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace poetbin {

QuantizerParams fit_quantizer(const Matrix& values, int bits) {
  POETBIN_CHECK(bits >= 1 && bits <= 16);
  POETBIN_CHECK(values.size() > 0);
  QuantizerParams params;
  params.bits = bits;
  params.min_value = values.vec()[0];
  params.max_value = values.vec()[0];
  for (const auto v : values.vec()) {
    params.min_value = std::min(params.min_value, v);
    params.max_value = std::max(params.max_value, v);
  }
  if (params.max_value == params.min_value) {
    params.max_value = params.min_value + 1.0f;  // avoid zero range
  }
  return params;
}

std::uint32_t quantize_value(float value, const QuantizerParams& params) {
  const float clamped =
      std::clamp(value, params.min_value, params.max_value);
  const float scaled = (clamped - params.min_value) / params.step();
  const auto code = static_cast<std::uint32_t>(std::lround(scaled));
  return std::min(code, params.levels() - 1);
}

float dequantize_value(std::uint32_t code, const QuantizerParams& params) {
  POETBIN_CHECK(code < params.levels());
  return params.min_value + static_cast<float>(code) * params.step();
}

float quantize_dequantize(float value, const QuantizerParams& params) {
  return dequantize_value(quantize_value(value, params), params);
}

Matrix quantize_matrix(const Matrix& values, const QuantizerParams& params) {
  Matrix out = values;
  for (auto& v : out.vec()) v = quantize_dequantize(v, params);
  return out;
}

}  // namespace poetbin
