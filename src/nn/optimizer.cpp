#include "nn/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace poetbin {

Sgd::Sgd(double learning_rate, double momentum) : momentum_(momentum) {
  learning_rate_ = learning_rate;
}

void Sgd::attach(std::vector<Param*> params) {
  params_ = std::move(params);
  velocity_.clear();
  velocity_.reserve(params_.size());
  for (const auto* p : params_) {
    velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Sgd::step() {
  POETBIN_CHECK(params_.size() == velocity_.size());
  const float lr = static_cast<float>(learning_rate_);
  const float mu = static_cast<float>(momentum_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Matrix& vel = velocity_[i];
    for (std::size_t k = 0; k < p.value.size(); ++k) {
      vel.vec()[k] = mu * vel.vec()[k] - lr * p.grad.vec()[k];
      p.value.vec()[k] += vel.vec()[k];
    }
  }
}

Adam::Adam(double learning_rate, double beta1, double beta2, double epsilon)
    : beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {
  learning_rate_ = learning_rate;
}

void Adam::attach(std::vector<Param*> params) {
  params_ = std::move(params);
  m_.clear();
  v_.clear();
  step_count_ = 0;
  for (const auto* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  POETBIN_CHECK(params_.size() == m_.size());
  ++step_count_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  const float lr = static_cast<float>(learning_rate_ * std::sqrt(bias2) / bias1);
  const float b1 = static_cast<float>(beta1_);
  const float b2 = static_cast<float>(beta2_);
  const float eps = static_cast<float>(epsilon_);

  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (std::size_t k = 0; k < p.value.size(); ++k) {
      const float g = p.grad.vec()[k];
      m.vec()[k] = b1 * m.vec()[k] + (1.0f - b1) * g;
      v.vec()[k] = b2 * v.vec()[k] + (1.0f - b2) * g * g;
      p.value.vec()[k] -= lr * m.vec()[k] / (std::sqrt(v.vec()[k]) + eps);
    }
  }
}

}  // namespace poetbin
