// Convolutional feature-extractor layers (Conv2d via im2col, MaxPool2d).
//
// Mini-batches stay in the (batch x C*H*W) matrix layout used by the dense
// layers; each spatial layer is constructed with its input shape and derives
// its output shape, so a Sequential of conv/pool/dense layers composes
// without a separate tensor type.
#pragma once

#include "nn/layers.h"

namespace poetbin {

struct Shape3 {
  std::size_t channels = 0;
  std::size_t height = 0;
  std::size_t width = 0;

  std::size_t flat() const { return channels * height * width; }
  bool operator==(const Shape3&) const = default;
};

class Conv2d : public Layer {
 public:
  Conv2d(Shape3 input_shape, std::size_t out_channels, std::size_t kernel,
         std::size_t stride, std::size_t padding, Rng& rng);

  Matrix forward(const Matrix& input, bool train) override;
  Matrix backward(const Matrix& grad_output) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return "Conv2d"; }

  Shape3 output_shape() const { return output_shape_; }

 private:
  // (n*out_h*out_w) x (in_c*k*k) patch matrix for one batch.
  Matrix im2col(const Matrix& input) const;
  // Scatter-add of patch gradients back to input layout.
  Matrix col2im(const Matrix& grad_cols, std::size_t batch) const;

  Shape3 input_shape_;
  Shape3 output_shape_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t padding_;
  Param weights_;  // (in_c*k*k) x out_c
  Param bias_;     // 1 x out_c
  Matrix cached_cols_;
};

class MaxPool2d : public Layer {
 public:
  MaxPool2d(Shape3 input_shape, std::size_t pool);

  Matrix forward(const Matrix& input, bool train) override;
  Matrix backward(const Matrix& grad_output) override;
  std::string name() const override { return "MaxPool2d"; }

  Shape3 output_shape() const { return output_shape_; }

 private:
  Shape3 input_shape_;
  Shape3 output_shape_;
  std::size_t pool_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
  std::size_t cached_batch_ = 0;
};

}  // namespace poetbin
