#include "nn/conv.h"

#include <cmath>
#include <limits>

namespace poetbin {

Conv2d::Conv2d(Shape3 input_shape, std::size_t out_channels, std::size_t kernel,
               std::size_t stride, std::size_t padding, Rng& rng)
    : input_shape_(input_shape),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weights_(Matrix::randn(
          input_shape.channels * kernel * kernel, out_channels, rng,
          std::sqrt(2.0 / static_cast<double>(input_shape.channels * kernel *
                                              kernel)))),
      bias_(Matrix::zeros(1, out_channels)) {
  POETBIN_CHECK(stride_ > 0);
  POETBIN_CHECK(input_shape.height + 2 * padding >= kernel);
  POETBIN_CHECK(input_shape.width + 2 * padding >= kernel);
  output_shape_ = {out_channels,
                   (input_shape.height + 2 * padding - kernel) / stride + 1,
                   (input_shape.width + 2 * padding - kernel) / stride + 1};
}

Matrix Conv2d::im2col(const Matrix& input) const {
  const std::size_t batch = input.rows();
  const std::size_t out_h = output_shape_.height;
  const std::size_t out_w = output_shape_.width;
  const std::size_t patch = input_shape_.channels * kernel_ * kernel_;
  Matrix cols(batch * out_h * out_w, patch);

  const std::size_t in_h = input_shape_.height;
  const std::size_t in_w = input_shape_.width;
  const std::size_t plane = in_h * in_w;

  for (std::size_t n = 0; n < batch; ++n) {
    const float* image = input.row(n);
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        float* dst = cols.row((n * out_h + oy) * out_w + ox);
        std::size_t idx = 0;
        for (std::size_t c = 0; c < input_shape_.channels; ++c) {
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            const long iy = static_cast<long>(oy * stride_ + ky) -
                            static_cast<long>(padding_);
            for (std::size_t kx = 0; kx < kernel_; ++kx, ++idx) {
              const long ix = static_cast<long>(ox * stride_ + kx) -
                              static_cast<long>(padding_);
              if (iy < 0 || ix < 0 || iy >= static_cast<long>(in_h) ||
                  ix >= static_cast<long>(in_w)) {
                dst[idx] = 0.0f;
              } else {
                dst[idx] = image[c * plane + static_cast<std::size_t>(iy) * in_w +
                                 static_cast<std::size_t>(ix)];
              }
            }
          }
        }
      }
    }
  }
  return cols;
}

Matrix Conv2d::col2im(const Matrix& grad_cols, std::size_t batch) const {
  const std::size_t out_h = output_shape_.height;
  const std::size_t out_w = output_shape_.width;
  const std::size_t in_h = input_shape_.height;
  const std::size_t in_w = input_shape_.width;
  const std::size_t plane = in_h * in_w;
  Matrix grad_input(batch, input_shape_.flat());

  for (std::size_t n = 0; n < batch; ++n) {
    float* image = grad_input.row(n);
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        const float* src = grad_cols.row((n * out_h + oy) * out_w + ox);
        std::size_t idx = 0;
        for (std::size_t c = 0; c < input_shape_.channels; ++c) {
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            const long iy = static_cast<long>(oy * stride_ + ky) -
                            static_cast<long>(padding_);
            for (std::size_t kx = 0; kx < kernel_; ++kx, ++idx) {
              const long ix = static_cast<long>(ox * stride_ + kx) -
                              static_cast<long>(padding_);
              if (iy < 0 || ix < 0 || iy >= static_cast<long>(in_h) ||
                  ix >= static_cast<long>(in_w)) {
                continue;
              }
              image[c * plane + static_cast<std::size_t>(iy) * in_w +
                    static_cast<std::size_t>(ix)] += src[idx];
            }
          }
        }
      }
    }
  }
  return grad_input;
}

Matrix Conv2d::forward(const Matrix& input, bool train) {
  POETBIN_CHECK(input.cols() == input_shape_.flat());
  const std::size_t batch = input.rows();
  Matrix cols = im2col(input);
  if (train) cached_cols_ = cols;

  // (batch*oh*ow x patch) * (patch x out_c)
  Matrix flat_out = cols.matmul(weights_.value);
  flat_out.add_row_vector(bias_.value);

  // Repack to (batch x out_c*oh*ow) channel-major images.
  const std::size_t out_h = output_shape_.height;
  const std::size_t out_w = output_shape_.width;
  const std::size_t out_c = output_shape_.channels;
  Matrix out(batch, output_shape_.flat());
  for (std::size_t n = 0; n < batch; ++n) {
    float* image = out.row(n);
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        const float* src = flat_out.row((n * out_h + oy) * out_w + ox);
        for (std::size_t c = 0; c < out_c; ++c) {
          image[c * out_h * out_w + oy * out_w + ox] = src[c];
        }
      }
    }
  }
  return out;
}

Matrix Conv2d::backward(const Matrix& grad_output) {
  const std::size_t batch = grad_output.rows();
  const std::size_t out_h = output_shape_.height;
  const std::size_t out_w = output_shape_.width;
  const std::size_t out_c = output_shape_.channels;

  // Unpack grad to the flat (batch*oh*ow x out_c) layout.
  Matrix flat_grad(batch * out_h * out_w, out_c);
  for (std::size_t n = 0; n < batch; ++n) {
    const float* image = grad_output.row(n);
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        float* dst = flat_grad.row((n * out_h + oy) * out_w + ox);
        for (std::size_t c = 0; c < out_c; ++c) {
          dst[c] = image[c * out_h * out_w + oy * out_w + ox];
        }
      }
    }
  }

  weights_.grad += cached_cols_.transposed_matmul(flat_grad);
  bias_.grad += flat_grad.column_sums();

  Matrix grad_cols = flat_grad.matmul_transposed(weights_.value);
  return col2im(grad_cols, batch);
}

void Conv2d::collect_params(std::vector<Param*>& out) {
  out.push_back(&weights_);
  out.push_back(&bias_);
}

MaxPool2d::MaxPool2d(Shape3 input_shape, std::size_t pool)
    : input_shape_(input_shape), pool_(pool) {
  POETBIN_CHECK(pool > 0);
  POETBIN_CHECK(input_shape.height % pool == 0);
  POETBIN_CHECK(input_shape.width % pool == 0);
  output_shape_ = {input_shape.channels, input_shape.height / pool,
                   input_shape.width / pool};
}

Matrix MaxPool2d::forward(const Matrix& input, bool train) {
  POETBIN_CHECK(input.cols() == input_shape_.flat());
  const std::size_t batch = input.rows();
  const std::size_t in_h = input_shape_.height;
  const std::size_t in_w = input_shape_.width;
  const std::size_t out_h = output_shape_.height;
  const std::size_t out_w = output_shape_.width;

  Matrix out(batch, output_shape_.flat());
  if (train) {
    argmax_.assign(batch * output_shape_.flat(), 0);
    cached_batch_ = batch;
  }

  for (std::size_t n = 0; n < batch; ++n) {
    const float* image = input.row(n);
    float* out_image = out.row(n);
    for (std::size_t c = 0; c < input_shape_.channels; ++c) {
      for (std::size_t oy = 0; oy < out_h; ++oy) {
        for (std::size_t ox = 0; ox < out_w; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t py = 0; py < pool_; ++py) {
            for (std::size_t px = 0; px < pool_; ++px) {
              const std::size_t idx =
                  c * in_h * in_w + (oy * pool_ + py) * in_w + (ox * pool_ + px);
              if (image[idx] > best) {
                best = image[idx];
                best_idx = idx;
              }
            }
          }
          const std::size_t out_idx = c * out_h * out_w + oy * out_w + ox;
          out_image[out_idx] = best;
          if (train) argmax_[n * output_shape_.flat() + out_idx] = best_idx;
        }
      }
    }
  }
  return out;
}

Matrix MaxPool2d::backward(const Matrix& grad_output) {
  POETBIN_CHECK(grad_output.rows() == cached_batch_);
  Matrix grad_input(cached_batch_, input_shape_.flat());
  for (std::size_t n = 0; n < cached_batch_; ++n) {
    const float* grad_row = grad_output.row(n);
    float* in_row = grad_input.row(n);
    for (std::size_t o = 0; o < output_shape_.flat(); ++o) {
      in_row[argmax_[n * output_shape_.flat() + o]] += grad_row[o];
    }
  }
  return grad_input;
}

}  // namespace poetbin
