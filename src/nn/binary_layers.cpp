#include "nn/binary_layers.h"

#include <cmath>

namespace poetbin {

Matrix SignActivation::forward(const Matrix& input, bool train) {
  if (train) cached_input_ = input;
  Matrix out = input;
  for (auto& v : out.vec()) v = (v >= 0.0f) ? 1.0f : -1.0f;
  return out;
}

Matrix SignActivation::backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (std::fabs(cached_input_.vec()[i]) > 1.0f) grad.vec()[i] = 0.0f;
  }
  return grad;
}

BinaryDense::BinaryDense(std::size_t in_dim, std::size_t out_dim, Rng& rng)
    : latent_(Matrix::randn(in_dim, out_dim, rng,
                            std::sqrt(2.0 / static_cast<double>(in_dim)))) {}

Matrix BinaryDense::binarized() const {
  Matrix bin = latent_.value;
  for (auto& v : bin.vec()) v = (v >= 0.0f) ? 1.0f : -1.0f;
  return bin;
}

Matrix BinaryDense::forward(const Matrix& input, bool train) {
  if (train) cached_input_ = input;
  return input.matmul(binarized());
}

Matrix BinaryDense::backward(const Matrix& grad_output) {
  // Straight-through: gradient w.r.t. the latent weights is the gradient
  // w.r.t. the binarized weights.
  latent_.grad += cached_input_.transposed_matmul(grad_output);
  return grad_output.matmul_transposed(binarized());
}

void BinaryDense::collect_params(std::vector<Param*>& out) {
  out.push_back(&latent_);
}

void BinaryDense::clip_latent_weights() {
  for (auto& v : latent_.value.vec()) {
    if (v > 1.0f) v = 1.0f;
    if (v < -1.0f) v = -1.0f;
  }
}

std::vector<BitVector> BinaryDense::packed_weights() const {
  std::vector<BitVector> columns(out_dim(), BitVector(in_dim()));
  for (std::size_t j = 0; j < out_dim(); ++j) {
    for (std::size_t i = 0; i < in_dim(); ++i) {
      if (latent_.value(i, j) >= 0.0f) columns[j].set(i, true);
    }
  }
  return columns;
}

long xnor_preactivation(const BitVector& inputs, const BitVector& weights) {
  const long agreements = static_cast<long>(inputs.xnor_popcount(weights));
  const long n = static_cast<long>(inputs.size());
  return 2 * agreements - n;
}

}  // namespace poetbin
