// Sequential model container and mini-batch training loop.
//
// Also provides `activations_at`, which runs the network up to (and
// including) a given layer — this is how the pipeline extracts the binary
// feature representation (after the feature extractor's BinarySigmoid) and
// the teacher's intermediate-layer bits for RINC distillation.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace poetbin {

enum class LossKind { kSquaredHinge, kCrossEntropy };

struct TrainConfig {
  std::size_t epochs = 10;
  std::size_t batch_size = 64;
  LossKind loss = LossKind::kSquaredHinge;
  double lr_decay = 0.9;  // per-epoch exponential decay factor
  bool verbose = false;
  std::uint64_t shuffle_seed = 7;
};

struct EpochStats {
  double train_loss = 0.0;
  double train_accuracy = 0.0;
};

class Sequential {
 public:
  Sequential() = default;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  template <typename LayerT, typename... Args>
  LayerT& add(Args&&... args) {
    auto layer = std::make_unique<LayerT>(std::forward<Args>(args)...);
    LayerT& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  std::size_t n_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  std::vector<Param*> params();

  Matrix forward(const Matrix& input, bool train);
  // dLoss/dLogits in, accumulates parameter gradients.
  void backward(const Matrix& grad_logits);

  // Runs layers [0, layer_index] in inference mode.
  Matrix activations_at(const Matrix& input, std::size_t layer_index,
                        std::size_t batch_size = 256);

  // Full inference in batches (memory-bounded).
  Matrix predict_logits(const Matrix& input, std::size_t batch_size = 256);
  std::vector<int> predict(const Matrix& input, std::size_t batch_size = 256);
  double evaluate_accuracy(const Matrix& input, const std::vector<int>& labels,
                           std::size_t batch_size = 256);

  // One optimization pass over the data; returns loss/accuracy on the
  // training batches as seen during the pass.
  EpochStats run_epoch(const Matrix& inputs, const std::vector<int>& labels,
                       Optimizer& optimizer, const TrainConfig& config,
                       Rng& shuffle_rng);

  // Full training loop: epochs, shuffling, LR decay.
  std::vector<EpochStats> fit(const Matrix& inputs, const std::vector<int>& labels,
                              Optimizer& optimizer, const TrainConfig& config);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

// Converts an ImageDataset's pixels to a (n x image_size) matrix, with
// values rescaled to [-1, 1] (zero-centred, as the paper's networks expect).
Matrix images_to_matrix(const ImageDataset& dataset);

}  // namespace poetbin
