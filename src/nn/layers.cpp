#include "nn/layers.h"

#include <cmath>

namespace poetbin {

Dense::Dense(std::size_t in_dim, std::size_t out_dim, Rng& rng)
    : weights_(Matrix::randn(in_dim, out_dim, rng,
                             std::sqrt(2.0 / static_cast<double>(in_dim)))),
      bias_(Matrix::zeros(1, out_dim)) {}

Matrix Dense::forward(const Matrix& input, bool train) {
  if (train) cached_input_ = input;
  Matrix out = input.matmul(weights_.value);
  out.add_row_vector(bias_.value);
  return out;
}

Matrix Dense::backward(const Matrix& grad_output) {
  weights_.grad += cached_input_.transposed_matmul(grad_output);
  bias_.grad += grad_output.column_sums();
  return grad_output.matmul_transposed(weights_.value);
}

void Dense::collect_params(std::vector<Param*>& out) {
  out.push_back(&weights_);
  out.push_back(&bias_);
}

Matrix Relu::forward(const Matrix& input, bool train) {
  if (train) cached_input_ = input;
  Matrix out = input;
  for (auto& v : out.vec()) {
    if (v < 0.0f) v = 0.0f;
  }
  return out;
}

Matrix Relu::backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (cached_input_.vec()[i] <= 0.0f) grad.vec()[i] = 0.0f;
  }
  return grad;
}

Matrix BinarySigmoid::forward(const Matrix& input, bool train) {
  if (train) cached_input_ = input;
  Matrix out = input;
  for (auto& v : out.vec()) v = (v >= 0.0f) ? 1.0f : 0.0f;
  return out;
}

Matrix BinarySigmoid::backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    // Straight-through: pass the gradient only where the hard sigmoid is
    // non-saturated.
    if (std::fabs(cached_input_.vec()[i]) > 1.0f) grad.vec()[i] = 0.0f;
  }
  return grad;
}

BatchNorm::BatchNorm(std::size_t dim, float momentum, float epsilon)
    : gamma_(Matrix(1, dim, 1.0f)),
      beta_(Matrix::zeros(1, dim)),
      running_mean_(Matrix::zeros(1, dim)),
      running_var_(Matrix(1, dim, 1.0f)),
      momentum_(momentum),
      epsilon_(epsilon) {}

Matrix BatchNorm::forward(const Matrix& input, bool train) {
  const std::size_t n = input.rows();
  const std::size_t dim = input.cols();
  Matrix out(n, dim);

  if (train) {
    POETBIN_CHECK_MSG(n > 0, "BatchNorm requires a non-empty batch");
    Matrix mean(1, dim);
    Matrix var(1, dim);
    for (std::size_t r = 0; r < n; ++r) {
      const float* row = input.row(r);
      for (std::size_t c = 0; c < dim; ++c) mean(0, c) += row[c];
    }
    mean *= 1.0f / static_cast<float>(n);
    for (std::size_t r = 0; r < n; ++r) {
      const float* row = input.row(r);
      for (std::size_t c = 0; c < dim; ++c) {
        const float d = row[c] - mean(0, c);
        var(0, c) += d * d;
      }
    }
    var *= 1.0f / static_cast<float>(n);

    cached_inv_std_ = Matrix(1, dim);
    for (std::size_t c = 0; c < dim; ++c) {
      cached_inv_std_(0, c) = 1.0f / std::sqrt(var(0, c) + epsilon_);
      running_mean_(0, c) =
          momentum_ * running_mean_(0, c) + (1.0f - momentum_) * mean(0, c);
      running_var_(0, c) =
          momentum_ * running_var_(0, c) + (1.0f - momentum_) * var(0, c);
    }

    cached_normalized_ = Matrix(n, dim);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < dim; ++c) {
        const float normalized =
            (input(r, c) - mean(0, c)) * cached_inv_std_(0, c);
        cached_normalized_(r, c) = normalized;
        out(r, c) = gamma_.value(0, c) * normalized + beta_.value(0, c);
      }
    }
  } else {
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < dim; ++c) {
        const float inv_std = 1.0f / std::sqrt(running_var_(0, c) + epsilon_);
        out(r, c) = gamma_.value(0, c) * (input(r, c) - running_mean_(0, c)) *
                        inv_std +
                    beta_.value(0, c);
      }
    }
  }
  return out;
}

Matrix BatchNorm::backward(const Matrix& grad_output) {
  const std::size_t n = grad_output.rows();
  const std::size_t dim = grad_output.cols();
  POETBIN_CHECK(cached_normalized_.rows() == n);

  Matrix grad_input(n, dim);
  // Standard batch-norm backward in terms of the cached normalized values.
  Matrix sum_grad(1, dim);
  Matrix sum_grad_norm(1, dim);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      sum_grad(0, c) += grad_output(r, c);
      sum_grad_norm(0, c) += grad_output(r, c) * cached_normalized_(r, c);
    }
  }
  for (std::size_t c = 0; c < dim; ++c) {
    gamma_.grad(0, c) += sum_grad_norm(0, c);
    beta_.grad(0, c) += sum_grad(0, c);
  }
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      const float term = grad_output(r, c) - inv_n * sum_grad(0, c) -
                         inv_n * cached_normalized_(r, c) * sum_grad_norm(0, c);
      grad_input(r, c) = gamma_.value(0, c) * cached_inv_std_(0, c) * term;
    }
  }
  return grad_input;
}

void BatchNorm::collect_params(std::vector<Param*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

BlockSparseDense::BlockSparseDense(std::size_t n_blocks, std::size_t block_size,
                                   Rng& rng)
    : n_blocks_(n_blocks),
      block_size_(block_size),
      weights_(Matrix::randn(n_blocks, block_size, rng,
                             std::sqrt(2.0 / static_cast<double>(block_size)))),
      bias_(Matrix::zeros(1, n_blocks)) {}

Matrix BlockSparseDense::forward(const Matrix& input, bool train) {
  POETBIN_CHECK(input.cols() == n_blocks_ * block_size_);
  if (train) cached_input_ = input;
  Matrix out(input.rows(), n_blocks_);
  for (std::size_t r = 0; r < input.rows(); ++r) {
    const float* in_row = input.row(r);
    float* out_row = out.row(r);
    for (std::size_t j = 0; j < n_blocks_; ++j) {
      const float* w = weights_.value.row(j);
      float acc = bias_.value(0, j);
      for (std::size_t k = 0; k < block_size_; ++k) {
        acc += w[k] * in_row[j * block_size_ + k];
      }
      out_row[j] = acc;
    }
  }
  return out;
}

Matrix BlockSparseDense::backward(const Matrix& grad_output) {
  POETBIN_CHECK(grad_output.cols() == n_blocks_);
  const std::size_t n = grad_output.rows();
  Matrix grad_input(n, n_blocks_ * block_size_);
  for (std::size_t r = 0; r < n; ++r) {
    const float* grad_row = grad_output.row(r);
    const float* in_row = cached_input_.row(r);
    float* gin_row = grad_input.row(r);
    for (std::size_t j = 0; j < n_blocks_; ++j) {
      const float g = grad_row[j];
      if (g == 0.0f) continue;
      bias_.grad(0, j) += g;
      float* wgrad = weights_.grad.row(j);
      const float* w = weights_.value.row(j);
      for (std::size_t k = 0; k < block_size_; ++k) {
        wgrad[k] += g * in_row[j * block_size_ + k];
        gin_row[j * block_size_ + k] += g * w[k];
      }
    }
  }
  return grad_input;
}

void BlockSparseDense::collect_params(std::vector<Param*>& out) {
  out.push_back(&weights_);
  out.push_back(&bias_);
}

Dropout::Dropout(double rate, Rng& rng) : rate_(rate), rng_(rng.fork(0xd0))
{
  POETBIN_CHECK(rate >= 0.0 && rate < 1.0);
}

Matrix Dropout::forward(const Matrix& input, bool train) {
  if (!train || rate_ == 0.0) return input;
  mask_ = Matrix(input.rows(), input.cols());
  const float scale = 1.0f / static_cast<float>(1.0 - rate_);
  Matrix out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const bool keep = !rng_.next_bool(rate_);
    mask_.vec()[i] = keep ? scale : 0.0f;
    out.vec()[i] *= mask_.vec()[i];
  }
  return out;
}

Matrix Dropout::backward(const Matrix& grad_output) {
  if (mask_.empty()) return grad_output;
  return grad_output.hadamard(mask_);
}

}  // namespace poetbin
