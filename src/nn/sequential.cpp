#include "nn/sequential.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace poetbin {

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& layer : layers_) layer->collect_params(out);
  return out;
}

Matrix Sequential::forward(const Matrix& input, bool train) {
  Matrix activation = input;
  for (auto& layer : layers_) activation = layer->forward(activation, train);
  return activation;
}

void Sequential::backward(const Matrix& grad_logits) {
  Matrix grad = grad_logits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->backward(grad);
  }
}

namespace {

Matrix gather_rows(const Matrix& input, const std::vector<std::size_t>& order,
                   std::size_t begin, std::size_t end) {
  Matrix out(end - begin, input.cols());
  for (std::size_t i = begin; i < end; ++i) {
    const float* src = input.row(order[i]);
    std::copy(src, src + input.cols(), out.row(i - begin));
  }
  return out;
}

}  // namespace

Matrix Sequential::activations_at(const Matrix& input, std::size_t layer_index,
                                  std::size_t batch_size) {
  POETBIN_CHECK(layer_index < layers_.size());
  Matrix result;
  bool first = true;
  for (std::size_t start = 0; start < input.rows(); start += batch_size) {
    const std::size_t end = std::min(input.rows(), start + batch_size);
    Matrix batch(end - start, input.cols());
    for (std::size_t r = start; r < end; ++r) {
      std::copy(input.row(r), input.row(r) + input.cols(), batch.row(r - start));
    }
    for (std::size_t l = 0; l <= layer_index; ++l) {
      batch = layers_[l]->forward(batch, /*train=*/false);
    }
    if (first) {
      result = Matrix(input.rows(), batch.cols());
      first = false;
    }
    for (std::size_t r = 0; r < batch.rows(); ++r) {
      std::copy(batch.row(r), batch.row(r) + batch.cols(), result.row(start + r));
    }
  }
  return result;
}

Matrix Sequential::predict_logits(const Matrix& input, std::size_t batch_size) {
  POETBIN_CHECK(!layers_.empty());
  return activations_at(input, layers_.size() - 1, batch_size);
}

std::vector<int> Sequential::predict(const Matrix& input, std::size_t batch_size) {
  return argmax_rows(predict_logits(input, batch_size));
}

double Sequential::evaluate_accuracy(const Matrix& input,
                                     const std::vector<int>& labels,
                                     std::size_t batch_size) {
  return accuracy(predict(input, batch_size), labels);
}

EpochStats Sequential::run_epoch(const Matrix& inputs,
                                 const std::vector<int>& labels,
                                 Optimizer& optimizer, const TrainConfig& config,
                                 Rng& shuffle_rng) {
  const std::size_t n = inputs.rows();
  POETBIN_CHECK(labels.size() == n);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  shuffle_rng.shuffle(order.data(), order.size());

  EpochStats stats;
  double loss_sum = 0.0;
  std::size_t correct = 0;
  std::size_t batches = 0;

  for (std::size_t start = 0; start < n; start += config.batch_size) {
    const std::size_t end = std::min(n, start + config.batch_size);
    Matrix batch = gather_rows(inputs, order, start, end);
    std::vector<int> batch_labels(end - start);
    for (std::size_t i = start; i < end; ++i) {
      batch_labels[i - start] = labels[order[i]];
    }

    optimizer.zero_grad();
    Matrix logits = forward(batch, /*train=*/true);
    const LossResult loss = (config.loss == LossKind::kSquaredHinge)
                                ? squared_hinge_loss(logits, batch_labels)
                                : cross_entropy_loss(logits, batch_labels);
    backward(loss.grad);
    optimizer.step();

    loss_sum += loss.value;
    ++batches;
    const auto preds = argmax_rows(logits);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == batch_labels[i]) ++correct;
    }
  }

  stats.train_loss = batches > 0 ? loss_sum / static_cast<double>(batches) : 0.0;
  stats.train_accuracy = n > 0 ? static_cast<double>(correct) / n : 0.0;
  return stats;
}

std::vector<EpochStats> Sequential::fit(const Matrix& inputs,
                                        const std::vector<int>& labels,
                                        Optimizer& optimizer,
                                        const TrainConfig& config) {
  optimizer.attach(params());
  Rng shuffle_rng(config.shuffle_seed);
  std::vector<EpochStats> history;
  history.reserve(config.epochs);
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    EpochStats stats = run_epoch(inputs, labels, optimizer, config, shuffle_rng);
    if (config.verbose) {
      std::printf("  epoch %zu/%zu loss=%.4f acc=%.4f lr=%.2e\n", epoch + 1,
                  config.epochs, stats.train_loss, stats.train_accuracy,
                  optimizer.learning_rate());
    }
    optimizer.decay_learning_rate(config.lr_decay);
    history.push_back(stats);
  }
  return history;
}

Matrix images_to_matrix(const ImageDataset& dataset) {
  Matrix out(dataset.size(), dataset.image_size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const float* src = dataset.image(i);
    float* dst = out.row(i);
    for (std::size_t k = 0; k < dataset.image_size(); ++k) {
      dst[k] = 2.0f * src[k] - 1.0f;
    }
  }
  return out;
}

}  // namespace poetbin
