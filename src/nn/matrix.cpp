#include "nn/matrix.h"

#include <cmath>

namespace poetbin {

Matrix Matrix::randn(std::size_t rows, std::size_t cols, Rng& rng, double stddev) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = static_cast<float>(rng.gaussian(0.0, stddev));
  return m;
}

Matrix Matrix::matmul(const Matrix& other) const {
  POETBIN_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  // i-k-j order: the inner loop streams both `other` and `out` rows.
  for (std::size_t i = 0; i < rows_; ++i) {
    const float* a_row = row(i);
    float* out_row = out.row(i);
    for (std::size_t k = 0; k < cols_; ++k) {
      const float a = a_row[k];
      if (a == 0.0f) continue;
      const float* b_row = other.row(k);
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out_row[j] += a * b_row[j];
      }
    }
  }
  return out;
}

Matrix Matrix::matmul_transposed(const Matrix& other) const {
  POETBIN_CHECK(cols_ == other.cols_);
  Matrix out(rows_, other.rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const float* a_row = row(i);
    float* out_row = out.row(i);
    for (std::size_t j = 0; j < other.rows_; ++j) {
      const float* b_row = other.row(j);
      float acc = 0.0f;
      for (std::size_t k = 0; k < cols_; ++k) acc += a_row[k] * b_row[k];
      out_row[j] = acc;
    }
  }
  return out;
}

Matrix Matrix::transposed_matmul(const Matrix& other) const {
  POETBIN_CHECK(rows_ == other.rows_);
  Matrix out(cols_, other.cols_);
  for (std::size_t k = 0; k < rows_; ++k) {
    const float* a_row = row(k);
    const float* b_row = other.row(k);
    for (std::size_t i = 0; i < cols_; ++i) {
      const float a = a_row[i];
      if (a == 0.0f) continue;
      float* out_row = out.row(i);
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out_row[j] += a * b_row[j];
      }
    }
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  POETBIN_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  POETBIN_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

void Matrix::add_row_vector(const Matrix& bias) {
  POETBIN_CHECK(bias.rows() == 1 && bias.cols() == cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    float* out_row = row(r);
    for (std::size_t c = 0; c < cols_; ++c) out_row[c] += bias(0, c);
  }
}

Matrix Matrix::column_sums() const {
  Matrix out(1, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const float* in_row = row(r);
    for (std::size_t c = 0; c < cols_; ++c) out(0, c) += in_row[c];
  }
  return out;
}

Matrix Matrix::hadamard(const Matrix& other) const {
  POETBIN_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] * other.data_[i];
  }
  return out;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (const auto v : data_) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

}  // namespace poetbin
