// Optimizers: SGD with momentum and Adam, both with the exponentially
// decaying learning-rate schedule the paper uses.
#pragma once

#include <vector>

#include "nn/layers.h"

namespace poetbin {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Registers the parameters once before training.
  virtual void attach(std::vector<Param*> params) = 0;
  virtual void step() = 0;

  void zero_grad() {
    for (auto* p : params_) p->zero_grad();
  }

  // lr(t) = lr0 * decay^epoch; call at the end of each epoch.
  void decay_learning_rate(double factor) { learning_rate_ *= factor; }
  double learning_rate() const { return learning_rate_; }

 protected:
  std::vector<Param*> params_;
  double learning_rate_ = 1e-3;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(double learning_rate, double momentum = 0.9);

  void attach(std::vector<Param*> params) override;
  void step() override;

 private:
  double momentum_;
  std::vector<Matrix> velocity_;
};

class Adam : public Optimizer {
 public:
  explicit Adam(double learning_rate, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8);

  void attach(std::vector<Param*> params) override;
  void step() override;

 private:
  double beta1_;
  double beta2_;
  double epsilon_;
  long step_count_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace poetbin
