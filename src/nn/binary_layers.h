// BinaryNet-style layers (Courbariaux et al. 2016): ±1 weights and
// activations trained with straight-through estimators, plus a packed
// XNOR-popcount inference path that matches the float forward pass
// bit-exactly after binarization.
#pragma once

#include "nn/layers.h"
#include "util/bitvector.h"

namespace poetbin {

// Sign activation emitting ±1 with the clipped straight-through gradient.
class SignActivation : public Layer {
 public:
  Matrix forward(const Matrix& input, bool train) override;
  Matrix backward(const Matrix& grad_output) override;
  std::string name() const override { return "Sign"; }

 private:
  Matrix cached_input_;
};

// Dense layer whose *effective* weights are sign(latent weights). Gradients
// flow to the latent weights (straight-through), which are clipped to
// [-1, 1] after each update as in the BinaryNet recipe.
class BinaryDense : public Layer {
 public:
  BinaryDense(std::size_t in_dim, std::size_t out_dim, Rng& rng);

  Matrix forward(const Matrix& input, bool train) override;
  Matrix backward(const Matrix& grad_output) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return "BinaryDense"; }

  void clip_latent_weights();

  std::size_t in_dim() const { return latent_.value.rows(); }
  std::size_t out_dim() const { return latent_.value.cols(); }

  // Packed sign(W) columns for XNOR-popcount inference. Column j's bit i is
  // 1 iff latent(i, j) >= 0.
  std::vector<BitVector> packed_weights() const;

  const Param& latent() const { return latent_; }
  Param& latent() { return latent_; }

 private:
  Matrix binarized() const;

  Param latent_;
  Matrix cached_input_;
};

// XNOR-popcount evaluation of one binary neuron: inputs/weights in {0,1}
// encode ±1 as (2b-1). Returns the integer pre-activation
// sum_i (2x_i-1)(2w_i-1) = 2*xnor_popcount - n.
long xnor_preactivation(const BitVector& inputs, const BitVector& weights);

}  // namespace poetbin
