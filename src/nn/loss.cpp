#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace poetbin {

LossResult squared_hinge_loss(const Matrix& logits, const std::vector<int>& labels) {
  const std::size_t n = logits.rows();
  const std::size_t n_classes = logits.cols();
  POETBIN_CHECK(labels.size() == n);
  LossResult result;
  result.grad = Matrix(n, n_classes);

  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits.row(i);
    float* grad_row = result.grad.row(i);
    for (std::size_t c = 0; c < n_classes; ++c) {
      const float target = (static_cast<std::size_t>(labels[i]) == c) ? 1.0f : -1.0f;
      const float margin = 1.0f - target * row[c];
      if (margin > 0.0f) {
        total += static_cast<double>(margin) * margin;
        grad_row[c] = -2.0f * margin * target * inv_n;
      }
    }
  }
  result.value = total / static_cast<double>(n);
  return result;
}

Matrix softmax(const Matrix& logits) {
  Matrix out = logits;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    float* row = out.row(i);
    float max_val = row[0];
    for (std::size_t c = 1; c < out.cols(); ++c) max_val = std::max(max_val, row[c]);
    float sum = 0.0f;
    for (std::size_t c = 0; c < out.cols(); ++c) {
      row[c] = std::exp(row[c] - max_val);
      sum += row[c];
    }
    const float inv = 1.0f / sum;
    for (std::size_t c = 0; c < out.cols(); ++c) row[c] *= inv;
  }
  return out;
}

LossResult cross_entropy_loss(const Matrix& logits, const std::vector<int>& labels) {
  const std::size_t n = logits.rows();
  POETBIN_CHECK(labels.size() == n);
  LossResult result;
  result.grad = softmax(logits);

  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    float* grad_row = result.grad.row(i);
    const auto label = static_cast<std::size_t>(labels[i]);
    POETBIN_CHECK(label < logits.cols());
    total -= std::log(std::max(grad_row[label], 1e-12f));
    grad_row[label] -= 1.0f;
    for (std::size_t c = 0; c < logits.cols(); ++c) grad_row[c] *= inv_n;
  }
  result.value = total / static_cast<double>(n);
  return result;
}

std::vector<int> argmax_rows(const Matrix& logits) {
  std::vector<int> out(logits.rows());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const float* row = logits.row(i);
    std::size_t best = 0;
    for (std::size_t c = 1; c < logits.cols(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[i] = static_cast<int>(best);
  }
  return out;
}

double accuracy(const std::vector<int>& predicted, const std::vector<int>& labels) {
  POETBIN_CHECK(predicted.size() == labels.size());
  if (predicted.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

}  // namespace poetbin
