// Uniform q-bit quantization utilities.
//
// The paper quantizes the retrained sparse output layer's activations to q
// bits (q = 8 chosen after a 4/8/16 ablation, §3) so each output neuron is
// implementable as q LUTs. We quantize symmetric around zero over the
// observed activation range.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/matrix.h"

namespace poetbin {

struct QuantizerParams {
  int bits = 8;
  float min_value = 0.0f;
  float max_value = 1.0f;

  std::uint32_t levels() const { return 1u << bits; }
  float step() const {
    return (max_value - min_value) / static_cast<float>(levels() - 1);
  }
};

// Fits the quantizer range to the data (min/max over all entries).
QuantizerParams fit_quantizer(const Matrix& values, int bits);

// Returns the integer code in [0, 2^bits).
std::uint32_t quantize_value(float value, const QuantizerParams& params);
// Code -> reconstructed float.
float dequantize_value(std::uint32_t code, const QuantizerParams& params);
// Round-trips a float through the quantizer.
float quantize_dequantize(float value, const QuantizerParams& params);

// Applies quantize_dequantize elementwise.
Matrix quantize_matrix(const Matrix& values, const QuantizerParams& params);

}  // namespace poetbin
