// Dense row-major float matrix with the handful of BLAS-like operations the
// training library needs. Kept deliberately small: this is a substrate for
// training the vanilla/teacher networks and baselines, not a tensor library.
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace poetbin {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float value = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  static Matrix zeros(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols, 0.0f);
  }
  // He-style Gaussian init scaled by fan-in.
  static Matrix randn(std::size_t rows, std::size_t cols, Rng& rng,
                      double stddev);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float operator()(std::size_t r, std::size_t c) const {
    POETBIN_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float& operator()(std::size_t r, std::size_t c) {
    POETBIN_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const float* row(std::size_t r) const { return data_.data() + r * cols_; }
  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* data() const { return data_.data(); }
  float* data() { return data_.data(); }
  const std::vector<float>& vec() const { return data_; }
  std::vector<float>& vec() { return data_; }

  void fill(float value) { std::fill(data_.begin(), data_.end(), value); }

  // this (m x k) times other (k x n) -> (m x n).
  Matrix matmul(const Matrix& other) const;
  // this (m x k) times other^T where other is (n x k) -> (m x n).
  Matrix matmul_transposed(const Matrix& other) const;
  // this^T (k x m) times other (k x n)? No: returns transpose(this) * other,
  // where this is (k x m) and other is (k x n) -> (m x n).
  Matrix transposed_matmul(const Matrix& other) const;

  Matrix transpose() const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(float scalar);

  // Adds `bias` (1 x cols) to every row.
  void add_row_vector(const Matrix& bias);
  // Column sums -> (1 x cols); used for bias gradients.
  Matrix column_sums() const;

  // Elementwise product.
  Matrix hadamard(const Matrix& other) const;

  double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace poetbin
