#include "baselines/ndf.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "util/check.h"

namespace poetbin {

namespace {

float sigmoidf(float z) { return 1.0f / (1.0f + std::exp(-z)); }

// Minimal Adam state over a flat float buffer.
struct AdamBuffer {
  std::vector<float> m;
  std::vector<float> v;

  void init(std::size_t n) {
    m.assign(n, 0.0f);
    v.assign(n, 0.0f);
  }

  void step(float* values, const float* grads, std::size_t n, double lr,
            long t) {
    const double bias1 = 1.0 - std::pow(0.9, static_cast<double>(t));
    const double bias2 = 1.0 - std::pow(0.999, static_cast<double>(t));
    const float alpha = static_cast<float>(lr * std::sqrt(bias2) / bias1);
    for (std::size_t i = 0; i < n; ++i) {
      m[i] = 0.9f * m[i] + 0.1f * grads[i];
      v[i] = 0.999f * v[i] + 0.001f * grads[i] * grads[i];
      values[i] -= alpha * m[i] / (std::sqrt(v[i]) + 1e-8f);
    }
  }
};

Matrix to_pm1_matrix(const BinaryDataset& data) {
  Matrix out(data.size(), data.n_features());
  for (std::size_t c = 0; c < data.n_features(); ++c) {
    const BitVector& column = data.features.column(c);
    for (std::size_t r = 0; r < data.size(); ++r) {
      out(r, c) = column.get(r) ? 1.0f : -1.0f;
    }
  }
  return out;
}

// Per-tree forward state needed by the backward pass for one example.
struct TreeForward {
  std::vector<double> reach;    // node reach probabilities q
  std::vector<double> d;        // routing sigmoid per internal node
  std::vector<double> subtree;  // S_i = expected pi_y below node i
  std::vector<double> pi_y;     // leaf probability of the true class
  std::vector<std::vector<double>> pi;  // full leaf distributions
};

}  // namespace

std::vector<double> NeuralDecisionForest::class_probabilities(
    const float* x) const {
  std::vector<double> probs(n_classes_, 0.0);
  const std::size_t internal = n_internal();
  const std::size_t leaves = n_leaves();
  std::vector<double> reach(internal + leaves, 0.0);

  for (const Tree& tree : trees_) {
    std::fill(reach.begin(), reach.end(), 0.0);
    reach[0] = 1.0;
    for (std::size_t i = 0; i < internal; ++i) {
      const float* w = tree.weights.row(i);
      float z = tree.bias[i];
      for (std::size_t f = 0; f < n_features_; ++f) z += w[f] * x[f];
      const double d = sigmoidf(z);
      reach[2 * i + 1] += reach[i] * (1.0 - d);
      reach[2 * i + 2] += reach[i] * d;
    }
    for (std::size_t l = 0; l < leaves; ++l) {
      const float* logits = tree.leaf_logits.row(l);
      float max_logit = logits[0];
      for (std::size_t c = 1; c < n_classes_; ++c) {
        max_logit = std::max(max_logit, logits[c]);
      }
      double denom = 0.0;
      for (std::size_t c = 0; c < n_classes_; ++c) {
        denom += std::exp(static_cast<double>(logits[c] - max_logit));
      }
      const double mu = reach[internal + l];
      for (std::size_t c = 0; c < n_classes_; ++c) {
        probs[c] +=
            mu * std::exp(static_cast<double>(logits[c] - max_logit)) / denom;
      }
    }
  }
  const double inv_trees = 1.0 / static_cast<double>(trees_.size());
  for (auto& p : probs) p *= inv_trees;
  return probs;
}

NeuralDecisionForest NeuralDecisionForest::train(const BinaryDataset& train_data,
                                                 const NdfConfig& config) {
  NeuralDecisionForest model;
  model.depth_ = config.depth;
  model.n_features_ = train_data.n_features();
  model.n_classes_ = train_data.n_classes;
  POETBIN_CHECK(config.n_trees >= 1 && config.depth >= 1);

  Rng rng(config.seed);
  const std::size_t internal = model.n_internal();
  const std::size_t leaves = model.n_leaves();
  const std::size_t n_features = model.n_features_;
  const std::size_t n_classes = model.n_classes_;

  for (std::size_t t = 0; t < config.n_trees; ++t) {
    Tree tree;
    tree.weights = Matrix::randn(internal, n_features, rng,
                                 1.0 / std::sqrt(n_features));
    tree.bias.assign(internal, 0.0f);
    tree.leaf_logits = Matrix::randn(leaves, n_classes, rng, 0.01);
    model.trees_.push_back(std::move(tree));
  }

  const Matrix inputs = to_pm1_matrix(train_data);
  const std::vector<int>& labels = train_data.labels;
  const std::size_t n = inputs.rows();

  std::vector<AdamBuffer> adam_route(config.n_trees);
  std::vector<AdamBuffer> adam_leaf(config.n_trees);
  for (std::size_t t = 0; t < config.n_trees; ++t) {
    adam_route[t].init(internal * (n_features + 1));
    adam_leaf[t].init(leaves * n_classes);
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng shuffle_rng(config.seed ^ 0x5a5aULL);
  long step = 0;

  std::vector<TreeForward> forward(config.n_trees);
  for (auto& tf : forward) {
    tf.reach.resize(internal + leaves);
    tf.d.resize(internal);
    tf.subtree.resize(internal + leaves);
    tf.pi_y.resize(leaves);
    tf.pi.assign(leaves, std::vector<double>(n_classes));
  }

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    shuffle_rng.shuffle(order.data(), order.size());
    double loss_sum = 0.0;
    std::size_t loss_count = 0;

    for (std::size_t start = 0; start < n; start += config.batch_size) {
      const std::size_t end = std::min(n, start + config.batch_size);
      const double inv_batch = 1.0 / static_cast<double>(end - start);

      std::vector<std::vector<float>> grad_route(config.n_trees);
      std::vector<std::vector<float>> grad_leaf(config.n_trees);
      for (std::size_t t = 0; t < config.n_trees; ++t) {
        grad_route[t].assign(internal * (n_features + 1), 0.0f);
        grad_leaf[t].assign(leaves * n_classes, 0.0f);
      }

      for (std::size_t bi = start; bi < end; ++bi) {
        const std::size_t idx = order[bi];
        const float* x = inputs.row(idx);
        const auto y = static_cast<std::size_t>(labels[idx]);

        // Forward all trees first: the NLL of the forest average couples
        // them through a single -1/(sum_t P_t(y)) factor.
        double total_py = 0.0;
        for (std::size_t t = 0; t < config.n_trees; ++t) {
          const Tree& tree = model.trees_[t];
          TreeForward& tf = forward[t];
          std::fill(tf.reach.begin(), tf.reach.end(), 0.0);
          tf.reach[0] = 1.0;
          for (std::size_t i = 0; i < internal; ++i) {
            const float* w = tree.weights.row(i);
            float z = tree.bias[i];
            for (std::size_t f = 0; f < n_features; ++f) z += w[f] * x[f];
            tf.d[i] = sigmoidf(z);
            tf.reach[2 * i + 1] += tf.reach[i] * (1.0 - tf.d[i]);
            tf.reach[2 * i + 2] += tf.reach[i] * tf.d[i];
          }
          double py = 0.0;
          for (std::size_t l = 0; l < leaves; ++l) {
            const float* logits = tree.leaf_logits.row(l);
            float max_logit = logits[0];
            for (std::size_t c = 1; c < n_classes; ++c) {
              max_logit = std::max(max_logit, logits[c]);
            }
            double denom = 0.0;
            for (std::size_t c = 0; c < n_classes; ++c) {
              tf.pi[l][c] = std::exp(static_cast<double>(logits[c] - max_logit));
              denom += tf.pi[l][c];
            }
            for (std::size_t c = 0; c < n_classes; ++c) tf.pi[l][c] /= denom;
            tf.pi_y[l] = tf.pi[l][y];
            py += tf.reach[internal + l] * tf.pi_y[l];
          }
          total_py += py;

          // S_i: expected true-class probability below node i.
          for (std::size_t l = 0; l < leaves; ++l) {
            tf.subtree[internal + l] = tf.pi_y[l];
          }
          for (std::size_t i = internal; i-- > 0;) {
            tf.subtree[i] = (1.0 - tf.d[i]) * tf.subtree[2 * i + 1] +
                            tf.d[i] * tf.subtree[2 * i + 2];
          }
        }

        loss_sum += -std::log(
            std::max(total_py / static_cast<double>(config.n_trees), 1e-12));
        ++loss_count;

        // Backward: L = -log(mean_t P_t) so dL/dP_t = -1 / sum_t P_t.
        const double dl_dp = -1.0 / std::max(total_py, 1e-12);
        for (std::size_t t = 0; t < config.n_trees; ++t) {
          const TreeForward& tf = forward[t];
          float* gr = grad_route[t].data();
          float* gl = grad_leaf[t].data();
          for (std::size_t i = 0; i < internal; ++i) {
            // dP/dz_i = q_i (S_right - S_left) d (1 - d)
            const double dz = dl_dp * tf.reach[i] *
                              (tf.subtree[2 * i + 2] - tf.subtree[2 * i + 1]) *
                              tf.d[i] * (1.0 - tf.d[i]) * inv_batch;
            if (dz == 0.0) continue;
            const auto dzf = static_cast<float>(dz);
            float* row = gr + i * (n_features + 1);
            for (std::size_t f = 0; f < n_features; ++f) row[f] += dzf * x[f];
            row[n_features] += dzf;
          }
          for (std::size_t l = 0; l < leaves; ++l) {
            const double mu = tf.reach[internal + l];
            if (mu == 0.0) continue;
            // dP/dtheta_lc = mu_l pi_y (delta_cy - pi_c) (softmax backward).
            const double base = dl_dp * mu * tf.pi_y[l] * inv_batch;
            for (std::size_t c = 0; c < n_classes; ++c) {
              const double delta = (c == y) ? 1.0 : 0.0;
              gl[l * n_classes + c] +=
                  static_cast<float>(base * (delta - tf.pi[l][c]));
            }
          }
        }
      }

      ++step;
      for (std::size_t t = 0; t < config.n_trees; ++t) {
        Tree& tree = model.trees_[t];
        // Routing params live as [w row | bias] per internal node; marshal
        // into one flat buffer for the Adam step.
        std::vector<float> route_values(internal * (n_features + 1));
        for (std::size_t i = 0; i < internal; ++i) {
          float* row = route_values.data() + i * (n_features + 1);
          std::copy(tree.weights.row(i), tree.weights.row(i) + n_features, row);
          row[n_features] = tree.bias[i];
        }
        adam_route[t].step(route_values.data(), grad_route[t].data(),
                           route_values.size(), config.learning_rate, step);
        for (std::size_t i = 0; i < internal; ++i) {
          const float* row = route_values.data() + i * (n_features + 1);
          std::copy(row, row + n_features, tree.weights.row(i));
          tree.bias[i] = row[n_features];
        }
        adam_leaf[t].step(tree.leaf_logits.data(), grad_leaf[t].data(),
                          tree.leaf_logits.size(), config.learning_rate, step);
      }
    }

    if (config.verbose) {
      std::printf(
          "  ndf epoch %zu nll=%.4f\n", epoch + 1,
          loss_sum / static_cast<double>(std::max<std::size_t>(loss_count, 1)));
    }
  }
  return model;
}

std::vector<int> NeuralDecisionForest::predict(const BinaryDataset& data) const {
  const Matrix inputs = to_pm1_matrix(data);
  std::vector<int> predictions(data.size(), 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto probs = class_probabilities(inputs.row(i));
    predictions[i] = static_cast<int>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
  }
  return predictions;
}

double NeuralDecisionForest::accuracy(const BinaryDataset& data) const {
  const auto predictions = predict(data);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == data.labels[i]) ++correct;
  }
  return data.size() == 0
             ? 0.0
             : static_cast<double>(correct) / static_cast<double>(data.size());
}

double NeuralDecisionForest::nll(const BinaryDataset& data) const {
  const Matrix inputs = to_pm1_matrix(data);
  double total = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto probs = class_probabilities(inputs.row(i));
    total -= std::log(
        std::max(probs[static_cast<std::size_t>(data.labels[i])], 1e-12));
  }
  return data.size() == 0 ? 0.0 : total / static_cast<double>(data.size());
}

}  // namespace poetbin
