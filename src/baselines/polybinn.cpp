#include "baselines/polybinn.h"

#include "data/binarize.h"
#include "util/check.h"

namespace poetbin {

PolyBinn PolyBinn::train(const BinaryDataset& train_data,
                         const PolyBinnConfig& config) {
  PolyBinn model;
  const std::size_t n_classes = train_data.n_classes;
  model.ensembles_.resize(n_classes);

  for (std::size_t c = 0; c < n_classes; ++c) {
    // One-vs-all targets for class c.
    BitVector targets(train_data.size());
    for (std::size_t i = 0; i < train_data.size(); ++i) {
      if (train_data.labels[i] == static_cast<int>(c)) targets.set(i, true);
    }

    ClassEnsemble& ensemble = model.ensembles_[c];
    ClassicDtConfig dt_config;
    dt_config.max_depth = config.max_depth;

    AdaboostConfig boost_config;
    boost_config.n_rounds = config.trees_per_class;
    auto train_weak = [&](std::span<const double> weights,
                          std::size_t round) -> BitVector {
      (void)round;
      ClassicDt tree =
          ClassicDt::train(train_data.features, targets, weights, dt_config);
      BitVector predictions = tree.eval_dataset(train_data.features);
      ensemble.trees.push_back(std::move(tree));
      return predictions;
    };

    const AdaboostResult boosted =
        run_adaboost(targets, train_weak, boost_config);
    for (const auto& round : boosted.rounds) {
      ensemble.alphas.push_back(round.alpha);
    }
  }
  return model;
}

double PolyBinn::confidence(const ClassEnsemble& ensemble,
                            const BitVector& example_bits) const {
  double sum = 0.0;
  for (std::size_t t = 0; t < ensemble.trees.size(); ++t) {
    const double h = ensemble.trees[t].eval(example_bits) ? 1.0 : -1.0;
    sum += ensemble.alphas[t] * h;
  }
  return sum;
}

std::vector<int> PolyBinn::predict(const BinaryDataset& data) const {
  std::vector<int> predictions(data.size(), 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const BitVector row = data.features.row(i);
    double best = 0.0;
    std::size_t best_class = 0;
    for (std::size_t c = 0; c < ensembles_.size(); ++c) {
      const double conf = confidence(ensembles_[c], row);
      if (c == 0 || conf > best) {
        best = conf;
        best_class = c;
      }
    }
    predictions[i] = static_cast<int>(best_class);
  }
  return predictions;
}

double PolyBinn::accuracy(const BinaryDataset& data) const {
  const auto predictions = predict(data);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == data.labels[i]) ++correct;
  }
  return data.size() == 0
             ? 0.0
             : static_cast<double>(correct) / static_cast<double>(data.size());
}

std::size_t PolyBinn::total_nodes() const {
  std::size_t total = 0;
  for (const auto& ensemble : ensembles_) {
    for (const auto& tree : ensemble.trees) total += tree.node_count();
  }
  return total;
}

std::size_t PolyBinn::total_distinct_features() const {
  std::size_t total = 0;
  for (const auto& ensemble : ensembles_) {
    for (const auto& tree : ensemble.trees) total += tree.distinct_features();
  }
  return total;
}

}  // namespace poetbin
