// POLYBiNN baseline (Abdelsalam et al. 2018).
//
// A pure decision-tree combinatorial engine: per class, a one-vs-all
// Adaboost ensemble of *off-the-shelf* (per-node greedy) DTs; the class
// with the highest ensemble confidence wins. This is exactly the contrast
// the paper draws: classic trees have more nodes and need a confidence
// comparison across binary classifiers, whereas PoET-BiN's level-wise trees
// are LUT-native and its output layer is a retrained neural layer.
#pragma once

#include <cstdint>
#include <vector>

#include "boost/adaboost.h"
#include "data/dataset.h"
#include "dt/classic_dt.h"

namespace poetbin {

struct PolyBinnConfig {
  std::size_t trees_per_class = 8;
  std::size_t max_depth = 6;
  std::uint64_t seed = 31;
};

class PolyBinn {
 public:
  static PolyBinn train(const BinaryDataset& train_data,
                        const PolyBinnConfig& config);

  std::vector<int> predict(const BinaryDataset& data) const;
  double accuracy(const BinaryDataset& data) const;

  // Resource proxy: total DT nodes across all ensembles.
  std::size_t total_nodes() const;
  // Distinct features the LUT mapping of each tree would need, summed.
  std::size_t total_distinct_features() const;

 private:
  struct ClassEnsemble {
    std::vector<ClassicDt> trees;
    std::vector<double> alphas;
  };

  // Signed confidence sum_i alpha_i * (2 h_i(x) - 1) for one class.
  double confidence(const ClassEnsemble& ensemble,
                    const BitVector& example_bits) const;

  std::vector<ClassEnsemble> ensembles_;
};

}  // namespace poetbin
