// BinaryNet baseline (Courbariaux et al. 2016) — classifier portion only.
//
// Mirrors the paper's comparison protocol: the same binary features feed a
// small MLP whose weights and activations are constrained to ±1 (trained
// with straight-through estimators, latent weights clipped to [-1, 1]).
// Inference on hardware would be XNOR + popcount + threshold per neuron —
// the packed path in nn/binary_layers.h evaluates exactly that and is
// checked bit-exact against the float forward pass in tests.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "nn/binary_layers.h"
#include "nn/sequential.h"

namespace poetbin {

struct BinaryNetConfig {
  std::vector<std::size_t> hidden_dims = {256};
  std::size_t epochs = 30;
  std::size_t batch_size = 64;
  double learning_rate = 5e-3;
  double lr_decay = 0.95;
  std::uint64_t seed = 21;
  bool verbose = false;
};

class BinaryNetClassifier {
 public:
  static BinaryNetClassifier train(const BinaryDataset& train_data,
                                   const BinaryNetConfig& config);

  std::vector<int> predict(const BinaryDataset& data) const;
  double accuracy(const BinaryDataset& data) const;

  // Binary neurons in the classifier (for the power model comparison).
  std::size_t n_neurons() const;

 private:
  // Mutable because forward passes cache activations inside layers; the
  // caches are training-only state irrelevant to logical constness.
  mutable Sequential net_;
  std::vector<BinaryDense*> binary_layers_;
  std::vector<std::size_t> dims_;

  static Matrix to_pm1(const BinaryDataset& data);
};

}  // namespace poetbin
