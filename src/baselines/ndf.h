// Neural Decision Forest baseline (Kontschieder et al. 2015), simplified.
//
// A forest of soft, differentiable decision trees over the binary features:
// each internal node routes with a sigmoid of a learned linear function,
// each leaf holds a softmax-parameterized class distribution, and the whole
// model is trained end-to-end with Adam on the negative log-likelihood.
// As the paper notes, the stochastic routing makes this accurate but
// hardware-unfriendly — which is exactly the contrast Table 2 draws.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "nn/matrix.h"
#include "util/rng.h"

namespace poetbin {

struct NdfConfig {
  std::size_t n_trees = 8;
  std::size_t depth = 4;  // 2^depth leaves per tree
  std::size_t epochs = 12;
  std::size_t batch_size = 64;
  double learning_rate = 5e-3;
  std::uint64_t seed = 41;
  bool verbose = false;
};

class NeuralDecisionForest {
 public:
  static NeuralDecisionForest train(const BinaryDataset& train_data,
                                    const NdfConfig& config);

  std::vector<int> predict(const BinaryDataset& data) const;
  double accuracy(const BinaryDataset& data) const;

  // Mean per-example NLL (diagnostic).
  double nll(const BinaryDataset& data) const;

 private:
  struct Tree {
    // Routing weights: (n_internal x F), bias (n_internal).
    Matrix weights;
    std::vector<float> bias;
    // Leaf logits: (n_leaves x n_classes); distributions are softmax rows.
    Matrix leaf_logits;
  };

  std::size_t n_internal() const { return (std::size_t{1} << depth_) - 1; }
  std::size_t n_leaves() const { return std::size_t{1} << depth_; }

  // P(y = c | x) for one example, averaged over trees; if `scratch` is
  // non-null, per-tree routing probabilities are stored for backprop.
  std::vector<double> class_probabilities(const float* x) const;

  std::size_t depth_ = 0;
  std::size_t n_features_ = 0;
  std::size_t n_classes_ = 0;
  std::vector<Tree> trees_;

  friend struct NdfTrainerAccess;
};

}  // namespace poetbin
