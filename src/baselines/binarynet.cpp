#include "baselines/binarynet.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "nn/loss.h"
#include "nn/optimizer.h"

namespace poetbin {

Matrix BinaryNetClassifier::to_pm1(const BinaryDataset& data) {
  Matrix out(data.size(), data.n_features());
  for (std::size_t c = 0; c < data.n_features(); ++c) {
    const BitVector& column = data.features.column(c);
    for (std::size_t r = 0; r < data.size(); ++r) {
      out(r, c) = column.get(r) ? 1.0f : -1.0f;
    }
  }
  return out;
}

BinaryNetClassifier BinaryNetClassifier::train(const BinaryDataset& train_data,
                                               const BinaryNetConfig& config) {
  BinaryNetClassifier model;
  Rng rng(config.seed);

  model.dims_.push_back(train_data.n_features());
  for (const auto h : config.hidden_dims) model.dims_.push_back(h);
  model.dims_.push_back(train_data.n_classes);

  for (std::size_t l = 0; l + 1 < model.dims_.size(); ++l) {
    auto& dense =
        model.net_.add<BinaryDense>(model.dims_[l], model.dims_[l + 1], rng);
    model.binary_layers_.push_back(&dense);
    model.net_.add<BatchNorm>(model.dims_[l + 1]);
    if (l + 2 < model.dims_.size()) model.net_.add<SignActivation>();
  }

  const Matrix inputs = to_pm1(train_data);
  const std::vector<int>& labels = train_data.labels;
  const std::size_t n = inputs.rows();

  Adam optimizer(config.learning_rate);
  optimizer.attach(model.net_.params());
  Rng shuffle_rng(config.seed ^ 0xabcdULL);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    shuffle_rng.shuffle(order.data(), order.size());
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < n; start += config.batch_size) {
      const std::size_t end = std::min(n, start + config.batch_size);
      Matrix batch(end - start, inputs.cols());
      std::vector<int> batch_labels(end - start);
      for (std::size_t i = start; i < end; ++i) {
        const float* src = inputs.row(order[i]);
        std::copy(src, src + inputs.cols(), batch.row(i - start));
        batch_labels[i - start] = labels[order[i]];
      }
      optimizer.zero_grad();
      Matrix logits = model.net_.forward(batch, /*train=*/true);
      const LossResult loss = squared_hinge_loss(logits, batch_labels);
      model.net_.backward(loss.grad);
      optimizer.step();
      // BinaryNet recipe: clip latent weights after every update.
      for (auto* layer : model.binary_layers_) layer->clip_latent_weights();
      loss_sum += loss.value;
      ++batches;
    }
    if (config.verbose) {
      std::printf("  binarynet epoch %zu loss=%.4f\n", epoch + 1,
                  loss_sum / static_cast<double>(std::max<std::size_t>(batches, 1)));
    }
    optimizer.decay_learning_rate(config.lr_decay);
  }
  return model;
}

std::vector<int> BinaryNetClassifier::predict(const BinaryDataset& data) const {
  return net_.predict(to_pm1(data));
}

double BinaryNetClassifier::accuracy(const BinaryDataset& data) const {
  return poetbin::accuracy(predict(data), data.labels);
}

std::size_t BinaryNetClassifier::n_neurons() const {
  std::size_t neurons = 0;
  for (std::size_t l = 1; l < dims_.size(); ++l) neurons += dims_[l];
  return neurons;
}

}  // namespace poetbin
