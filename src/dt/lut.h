// Look-Up Table: the atomic hardware unit of PoET-BiN.
//
// A Lut selects P input features (by index into the binary feature vector)
// and stores one output bit for each of the 2^P input combinations — exactly
// the Input-vs-Output table of Fig. 1. Address convention: bit j of the
// table address is the value of input feature `inputs()[j]` (the feature
// selected at DT level j), so address = sum_j x[inputs[j]] << j.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/bit_matrix.h"
#include "util/bitvector.h"
#include "util/word_storage.h"

namespace poetbin {

class Lut {
 public:
  Lut() = default;
  Lut(std::vector<std::size_t> inputs, BitVector table);

  // Reconstruction with a pre-splatted table — the packed-model loader
  // injects a view into the file mapping here, so the word kernels read
  // the mapping directly and load time never re-splats. `splat` must hold
  // table.size() words, each 0 or ~0, matching `table` bit for bit (the
  // loader validates; the kernels trust it).
  Lut(std::vector<std::size_t> inputs, BitVector table, WordStorage splat);

  std::size_t arity() const { return inputs_.size(); }
  std::size_t table_size() const { return table_.size(); }
  const std::vector<std::size_t>& inputs() const { return inputs_; }
  const BitVector& table() const { return table_; }

  // Truth table splatted to one word per entry (splat[a] is ~0 when
  // table[a] is set) — the constant array the Shannon-reduction kernels
  // consume. Built eagerly at construction, or borrowed from a packed
  // model mapping.
  std::span<const std::uint64_t> splat_words() const { return splat_.words(); }

  bool lookup(std::size_t address) const { return table_.get(address); }

  // Address of one example's row bits (size = full feature count).
  std::size_t address_of(const BitVector& example_bits) const;
  bool eval(const BitVector& example_bits) const {
    return lookup(address_of(example_bits));
  }

  // Evaluates all rows of a feature-major dataset in one pass per input.
  BitVector eval_dataset(const BitMatrix& features) const;

  // Word-parallel evaluation: Shannon-expands the truth table over the P
  // packed column words, processing 64 examples per step with pure word
  // logic. Bit-identical to eval_dataset. Defined in core/batch_eval.cpp.
  BitVector eval_dataset_bitsliced(const BitMatrix& features) const;

  // Per-example addresses for a whole dataset (used by the sparse output
  // layer, whose LUT output is multi-bit).
  std::vector<std::size_t> addresses(const BitMatrix& features) const;

  bool operator==(const Lut& other) const {
    return inputs_ == other.inputs_ && table_ == other.table_;
  }

 private:
  std::vector<std::size_t> inputs_;
  BitVector table_;     // size 2^arity
  WordStorage splat_;   // one word per table entry (owned or mapping view)
};

}  // namespace poetbin
