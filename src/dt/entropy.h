// Weighted entropy utilities shared by the level-wise and classic DTs.
#pragma once

#include <cstddef>

namespace poetbin {

// Binary Shannon entropy of the distribution (w0, w1) in bits, scaled by
// the node's total weight: (w0+w1) * H(w1/(w0+w1)). Zero-weight nodes
// contribute zero. This is the quantity Algorithm 1 accumulates per level.
double weighted_node_entropy(double weight_class0, double weight_class1);

// Plain H(p) for p in [0,1], in bits.
double binary_entropy(double p);

}  // namespace poetbin
