// Weighted entropy utilities shared by the level-wise and classic DTs.
//
// Defined inline: the level-wise DT's candidate scans call these once per
// tree node per candidate (hundreds of thousands of calls per trained LUT),
// so the call overhead is measurable on both the scalar and word-parallel
// training paths.
#pragma once

#include <cmath>
#include <cstddef>

#include "util/check.h"

namespace poetbin {

// Plain H(p) for p in [0,1], in bits.
inline double binary_entropy(double p) {
  POETBIN_CHECK(p >= 0.0 && p <= 1.0);
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

// Binary Shannon entropy of the distribution (w0, w1) in bits, scaled by
// the node's total weight: (w0+w1) * H(w1/(w0+w1)). Zero-weight nodes
// contribute zero. This is the quantity Algorithm 1 accumulates per level.
inline double weighted_node_entropy(double weight_class0,
                                    double weight_class1) {
  POETBIN_CHECK(weight_class0 >= 0.0 && weight_class1 >= 0.0);
  const double total = weight_class0 + weight_class1;
  if (total <= 0.0) return 0.0;
  return total * binary_entropy(weight_class1 / total);
}

// Batched form over a contiguous array of (w0, w1) pairs:
//   init + sum_k weighted_node_entropy(pairs[2k], pairs[2k + 1])
// accumulated in ascending k — the node order of Algorithm 1's level scan,
// so chaining calls through `init` reproduces a single long accumulation
// exactly. This is the canonical body behind WordOps::entropy_sum: log2 is
// not an exact operation, so no SIMD backend may widen the per-node math,
// and every backend shares this one definition.
inline double weighted_entropy_sum(const double* pairs, std::size_t n_pairs,
                                   double init) {
  double total = init;
  for (std::size_t k = 0; k < n_pairs; ++k) {
    total += weighted_node_entropy(pairs[2 * k], pairs[2 * k + 1]);
  }
  return total;
}

}  // namespace poetbin
