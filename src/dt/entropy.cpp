#include "dt/entropy.h"

#include <cmath>

#include "util/check.h"

namespace poetbin {

double binary_entropy(double p) {
  POETBIN_CHECK(p >= 0.0 && p <= 1.0);
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

double weighted_node_entropy(double weight_class0, double weight_class1) {
  POETBIN_CHECK(weight_class0 >= 0.0 && weight_class1 >= 0.0);
  const double total = weight_class0 + weight_class1;
  if (total <= 0.0) return 0.0;
  return total * binary_entropy(weight_class1 / total);
}

}  // namespace poetbin
