// Modified level-wise decision tree — Algorithm 1 of the paper (RINC-0).
//
// Unlike a classic DT (one feature per *node*), the level-wise DT assigns
// one feature per *level*: every node at depth j tests the same feature, so
// a depth-P tree partitions the input space into exactly 2^P cells addressed
// by the P selected feature bits — i.e. it IS a P-input LUT. Training
// greedily picks, per level, the unused feature that minimises the total
// weighted entropy across all nodes of that level; leaves take the weighted
// majority class (ties resolved to class 1, matching Algorithm 1's
// "S0 <= S1 -> 1" rule).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dt/lut.h"
#include "util/bit_matrix.h"
#include "util/bitvector.h"

namespace poetbin {

class BatchEngine;  // core/batch_eval.h; optional candidate-scan parallelism

struct LevelDtConfig {
  // P: number of inputs of the target LUT (= tree depth).
  std::size_t n_inputs = 6;
  // Optional candidate restriction; empty means "all features". Duplicate
  // entries are deduplicated (first occurrence wins the tie-break order) and
  // features already used by this tree are always excluded, per Algorithm 1.
  std::vector<std::size_t> candidate_features;
  // Word-parallel entropy scan: per-bucket class masses are gathered from
  // the packed candidate-column words (64 examples per word op) instead of
  // extracting one bit per example. Per-candidate scores agree with the
  // scalar scan to accumulated rounding (masses are derived subtractively
  // and carried across levels), so feature selection matches the scalar
  // path unless two candidates score within a few ulps of each other —
  // exact duplicates still tie exactly and resolve identically. Once
  // selection matches, LUT contents, reported entropy and weighted error
  // are bit-identical (they come from exact in-order rebuilds). The scalar
  // path remains as the test reference.
  bool word_parallel = true;
};

struct LevelDtResult {
  Lut lut;
  // Weighted training error of the LUT under the weights it was trained on.
  double weighted_error = 0.0;
  // Total weighted entropy after the final level (diagnostic).
  double final_entropy = 0.0;
};

// Trains Algorithm 1. `targets` holds the binary class per example;
// `weights` must sum to something positive (Adaboost passes a distribution).
// If `weights` is empty, uniform weights are used. When `engine` is non-null
// and the word-parallel path is enabled, the per-level scan over candidate
// features is spread across the engine's thread pool (results are identical
// at any thread count: each candidate's score is computed independently and
// the argmin keeps the scalar tie-break order).
LevelDtResult train_level_dt(const BitMatrix& features, const BitVector& targets,
                             std::span<const double> weights,
                             const LevelDtConfig& config,
                             const BatchEngine* engine = nullptr);

}  // namespace poetbin
