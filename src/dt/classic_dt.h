// Classic per-node greedy decision tree (Quinlan-style) on binary features.
//
// This is the "off-the-shelf DT" the paper contrasts with its level-wise
// variant: each node picks its own best feature, so equally deep trees use
// more distinct features and do NOT map to a single LUT. Used by the
// POLYBiNN baseline and by the ablation comparing RINC-0 against a
// depth-limited classic tree under an equal-distinct-features budget.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/bit_matrix.h"
#include "util/bitvector.h"

namespace poetbin {

struct ClassicDtConfig {
  std::size_t max_depth = 6;
  // Stop splitting when a node's total weight drops below this fraction of
  // the root weight.
  double min_node_weight_fraction = 1e-4;
};

class ClassicDt {
 public:
  ClassicDt() = default;

  static ClassicDt train(const BitMatrix& features, const BitVector& targets,
                         std::span<const double> weights,
                         const ClassicDtConfig& config);

  bool eval(const BitVector& example_bits) const;
  BitVector eval_dataset(const BitMatrix& features) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t leaf_count() const;
  std::size_t depth() const;
  // Number of distinct features tested anywhere in the tree; this is what
  // a LUT implementation of the tree would need as inputs.
  std::size_t distinct_features() const;

  double weighted_error(const BitMatrix& features, const BitVector& targets,
                        std::span<const double> weights) const;

 private:
  struct Node {
    // Leaf iff feature == kLeaf; then `label` holds the class.
    static constexpr std::size_t kLeaf = static_cast<std::size_t>(-1);
    std::size_t feature = kLeaf;
    int left = -1;   // feature bit == 0
    int right = -1;  // feature bit == 1
    bool label = false;
  };

  int build(const BitMatrix& features, const BitVector& targets,
            std::span<const double> weights, std::vector<std::size_t>& examples,
            std::vector<bool>& used_on_path, std::size_t depth,
            const ClassicDtConfig& config, double root_weight);

  std::size_t depth_below(int node) const;

  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace poetbin
