#include "dt/level_dt.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "dt/entropy.h"
#include "util/check.h"

namespace poetbin {

namespace {

// Extracts bit i from a packed column without bounds re-checks; callers
// guarantee i < n.
inline std::size_t column_bit(const std::uint64_t* words, std::size_t i) {
  return (words[i >> 6] >> (i & 63)) & 1ULL;
}

}  // namespace

LevelDtResult train_level_dt(const BitMatrix& features, const BitVector& targets,
                             std::span<const double> weights,
                             const LevelDtConfig& config) {
  const std::size_t n = features.rows();
  const std::size_t n_features = features.cols();
  POETBIN_CHECK(targets.size() == n);
  POETBIN_CHECK(config.n_inputs >= 1);
  POETBIN_CHECK_MSG(config.n_inputs <= 16, "LUT arity beyond hardware range");
  POETBIN_CHECK_MSG(n > 0, "cannot train on an empty dataset");

  std::vector<double> uniform;
  if (weights.empty()) {
    uniform.assign(n, 1.0 / static_cast<double>(n));
    weights = uniform;
  }
  POETBIN_CHECK(weights.size() == n);

  std::vector<std::size_t> candidates = config.candidate_features;
  if (candidates.empty()) {
    candidates.resize(n_features);
    std::iota(candidates.begin(), candidates.end(), std::size_t{0});
  }
  for (const auto c : candidates) POETBIN_CHECK(c < n_features);
  const std::size_t depth = std::min(config.n_inputs, candidates.size());
  POETBIN_CHECK_MSG(depth == config.n_inputs,
                    "not enough candidate features for the requested LUT arity");

  // node_id[i]: LUT address prefix of example i (bits 0..level-1 filled).
  std::vector<std::uint32_t> node_id(n, 0);
  std::vector<bool> used(n_features, false);
  std::vector<std::size_t> selected;
  selected.reserve(depth);

  // counts[bucket*2 + class]: weighted class mass per candidate child node.
  std::vector<double> counts;
  double best_entropy_final = 0.0;

  for (std::size_t level = 0; level < depth; ++level) {
    const std::size_t n_buckets = std::size_t{2} << level;  // 2^(level+1)
    double min_entropy = std::numeric_limits<double>::infinity();
    std::size_t best_feature = n_features;  // sentinel

    for (const auto feat : candidates) {
      if (used[feat]) continue;
      counts.assign(n_buckets * 2, 0.0);
      const std::uint64_t* col = features.column(feat).words();
      const std::uint64_t* tgt = targets.words();
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t bucket =
            node_id[i] | (column_bit(col, i) << level);
        counts[bucket * 2 + column_bit(tgt, i)] += weights[i];
      }
      double level_entropy = 0.0;
      for (std::size_t b = 0; b < n_buckets; ++b) {
        level_entropy += weighted_node_entropy(counts[b * 2], counts[b * 2 + 1]);
      }
      // Strict '<' keeps the smallest feature index on ties -> deterministic.
      if (level_entropy < min_entropy) {
        min_entropy = level_entropy;
        best_feature = feat;
      }
    }

    POETBIN_CHECK(best_feature < n_features);
    used[best_feature] = true;
    selected.push_back(best_feature);
    best_entropy_final = min_entropy;

    const std::uint64_t* col = features.column(best_feature).words();
    for (std::size_t i = 0; i < n; ++i) {
      node_id[i] |= static_cast<std::uint32_t>(column_bit(col, i) << level);
    }
  }

  // Leaf labelling: weighted majority per cell; Algorithm 1 assigns class 1
  // when S0 <= S1 (so empty cells default to 1).
  const std::size_t n_cells = std::size_t{1} << depth;
  std::vector<double> cell_mass(n_cells * 2, 0.0);
  const std::uint64_t* tgt = targets.words();
  for (std::size_t i = 0; i < n; ++i) {
    cell_mass[node_id[i] * 2 + column_bit(tgt, i)] += weights[i];
  }

  BitVector table(n_cells);
  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    if (cell_mass[cell * 2] <= cell_mass[cell * 2 + 1]) table.set(cell, true);
  }

  LevelDtResult result;
  result.lut = Lut(std::move(selected), std::move(table));
  result.final_entropy = best_entropy_final;

  double error = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool predicted = result.lut.lookup(node_id[i]);
    if (predicted != targets.get(i)) error += weights[i];
  }
  const double total_weight =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  result.weighted_error = total_weight > 0.0 ? error / total_weight : 0.0;
  return result;
}

}  // namespace poetbin
