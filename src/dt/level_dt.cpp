#include "dt/level_dt.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <numeric>

#include "core/batch_eval.h"
#include "dt/entropy.h"
#include "util/aligned_vector.h"
#include "util/check.h"
#include "util/word_backend.h"

namespace poetbin {

namespace {

// Extracts bit i from a packed column without bounds re-checks; callers
// guarantee i < n.
inline std::size_t column_bit(const std::uint64_t* words, std::size_t i) {
  return (words[i >> 6] >> (i & 63)) & 1ULL;
}

// Reference implementation: one node_id/target bit extraction per example
// per candidate. Kept verbatim as the semantics the word-parallel path must
// reproduce bit for bit (tests compare the two).
LevelDtResult train_scalar(const BitMatrix& features, const BitVector& targets,
                           std::span<const double> weights,
                           const std::vector<std::size_t>& candidates,
                           std::size_t depth) {
  const std::size_t n = features.rows();
  const std::size_t n_features = features.cols();

  // node_id[i]: LUT address prefix of example i (bits 0..level-1 filled).
  std::vector<std::uint32_t> node_id(n, 0);
  std::vector<bool> used(n_features, false);
  std::vector<std::size_t> selected;
  selected.reserve(depth);

  // counts[bucket*2 + class]: weighted class mass per candidate child node.
  std::vector<double> counts;
  double best_entropy_final = 0.0;

  for (std::size_t level = 0; level < depth; ++level) {
    const std::size_t n_buckets = std::size_t{2} << level;  // 2^(level+1)
    double min_entropy = std::numeric_limits<double>::infinity();
    std::size_t best_feature = n_features;  // sentinel

    for (const auto feat : candidates) {
      if (used[feat]) continue;
      counts.assign(n_buckets * 2, 0.0);
      const std::uint64_t* col = features.column(feat).words();
      const std::uint64_t* tgt = targets.words();
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t bucket =
            node_id[i] | (column_bit(col, i) << level);
        counts[bucket * 2 + column_bit(tgt, i)] += weights[i];
      }
      double level_entropy = 0.0;
      for (std::size_t b = 0; b < n_buckets; ++b) {
        level_entropy += weighted_node_entropy(counts[b * 2], counts[b * 2 + 1]);
      }
      // Strict '<' keeps the smallest feature index on ties -> deterministic.
      if (level_entropy < min_entropy) {
        min_entropy = level_entropy;
        best_feature = feat;
      }
    }

    POETBIN_CHECK(best_feature < n_features);
    used[best_feature] = true;
    selected.push_back(best_feature);
    best_entropy_final = min_entropy;

    const std::uint64_t* col = features.column(best_feature).words();
    for (std::size_t i = 0; i < n; ++i) {
      node_id[i] |= static_cast<std::uint32_t>(column_bit(col, i) << level);
    }
  }

  // Leaf labelling: weighted majority per cell; Algorithm 1 assigns class 1
  // when S0 <= S1 (so empty cells default to 1).
  const std::size_t n_cells = std::size_t{1} << depth;
  std::vector<double> cell_mass(n_cells * 2, 0.0);
  const std::uint64_t* tgt = targets.words();
  for (std::size_t i = 0; i < n; ++i) {
    cell_mass[node_id[i] * 2 + column_bit(tgt, i)] += weights[i];
  }

  BitVector table(n_cells);
  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    if (cell_mass[cell * 2] <= cell_mass[cell * 2 + 1]) table.set(cell, true);
  }

  LevelDtResult result;
  result.lut = Lut(std::move(selected), std::move(table));
  result.final_entropy = best_entropy_final;

  double error = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool predicted = result.lut.lookup(node_id[i]);
    if (predicted != targets.get(i)) error += weights[i];
  }
  const double total_weight =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  result.weighted_error = total_weight > 0.0 ? error / total_weight : 0.0;
  return result;
}
// Word-parallel scan. Four ideas:
//
//  1. cell[i] = node_id[i]*2 + target_bit(i) is maintained across levels, so
//     a candidate's (bucket, class) cell needs no per-example bit extraction
//     at scan time; scoring a candidate is one gather pass over the set bits
//     of packed column words (countr_zero iteration skips the zero bits for
//     free, 64 examples per word load). The gather runs two interleaved
//     word streams into two accumulator banks, so neither the bit-clearing
//     dependency chain nor a hot accumulator's FP-add latency serialises it.
//  2. Per level, the class masses of the current nodes ("base") are known
//     before any candidate is scanned, and a candidate only moves examples
//     whose candidate bit is 1 into the upper half of its child nodes. So
//     gathering that half determines the lower half by subtraction — half
//     the weight-accumulation work of the scalar scan.
//  3. Cross-level recurrence: each surviving candidate carries its per-cell
//     masses from the previous level. Refining by the last winner's bit
//     only needs a gather over `candidate AND winner` (about a quarter of
//     the examples); the winner-bit-0 halves follow by subtraction from the
//     carried masses. Levels past the first therefore cost ~n/4 gathered
//     adds per candidate instead of the scalar scan's n bucket updates.
//
// Shallow levels (few cells) gather into two accumulator banks folded
// afterwards — with few distinct cells the two streams would otherwise
// collide on hot accumulators; deep levels gather both streams straight
// into the target buffer, where collisions are rare and the bank fill and
// fold would cost more than they save.
//
// After the winner is chosen its bit is folded into cell[] and base is
// rebuilt with one exact in-order pass, which makes the reported entropy,
// the leaf masses and the weighted error bit-identical to the scalar path.

// Accumulates weights[i] of every set bit i of (a AND b) — b may be null,
// meaning just a — into banks[cells[i]] and banks[stride + cells[i]],
// alternating between the two bank halves across two interleaved word
// streams. stride 0 collapses the banks into one target buffer; otherwise
// callers fold bank 1 into bank 0 afterwards. The last word is masked to
// n_bits so stray tail bits (raw-word writers that skipped
// mask_tail_word()) cannot index past the cell/weight arrays.
void gather_masked_weights(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n_bits, const std::uint32_t* cells,
                           const double* wts, double* banks,
                           std::size_t stride) {
  const std::size_t n_words = BitVector::words_needed(n_bits);
  const std::uint64_t tail = BitVector::tail_word_mask(n_bits);
  // The only word-level op in the scan — cand AND winner — runs at SIMD
  // width on the active backend into a per-thread buffer; the weighted
  // gather itself must stay scalar (FP adds in ascending bit order is the
  // bit-identity contract). With no winner mask the source is read directly.
  const std::uint64_t* src = a;
  if (b != nullptr) {
    static thread_local WordVec masked;
    if (masked.size() < n_words) masked.resize(n_words);
    word_ops().and_words(a, b, masked.data(), n_words);
    src = masked.data();
  }
  auto load = [&](std::size_t w) {
    std::uint64_t m = src[w];
    if (w + 1 == n_words) m &= tail;
    return m;
  };
  auto drain = [&](std::uint64_t m, std::size_t row0, double* bank) {
    while (m != 0) {
      const std::size_t i =
          row0 + static_cast<std::size_t>(std::countr_zero(m));
      bank[cells[i]] += wts[i];
      m &= m - 1;
    }
  };
  const std::size_t half = n_words / 2;
  for (std::size_t w = 0; w < half; ++w) {
    const std::size_t wa = w;
    const std::size_t wb = half + w;
    std::uint64_t ma = load(wa);
    std::uint64_t mb = load(wb);
    const std::size_t ra = wa * 64;
    const std::size_t rb = wb * 64;
    while (ma != 0 && mb != 0) {
      const std::size_t ia =
          ra + static_cast<std::size_t>(std::countr_zero(ma));
      const std::size_t ib =
          rb + static_cast<std::size_t>(std::countr_zero(mb));
      banks[cells[ia]] += wts[ia];
      banks[stride + cells[ib]] += wts[ib];
      ma &= ma - 1;
      mb &= mb - 1;
    }
    drain(ma, ra, banks);
    drain(mb, rb, banks + stride);
  }
  for (std::size_t w = 2 * half; w < n_words; ++w) {
    drain(load(w), w * 64, banks);
  }
}

LevelDtResult train_bitsliced(const BitMatrix& features,
                              const BitVector& targets,
                              std::span<const double> weights,
                              const std::vector<std::size_t>& candidates,
                              std::size_t depth, const BatchEngine* engine) {
  const std::size_t n = features.rows();
  const std::size_t n_features = features.cols();
  const std::size_t n_words = BitVector::words_needed(n);

  std::vector<std::uint32_t> cell(n);
  {
    const std::uint64_t* tgt = targets.words();
    for (std::size_t i = 0; i < n; ++i) {
      cell[i] = static_cast<std::uint32_t>(column_bit(tgt, i));
    }
  }

  // base[node*2 + class]: weighted mass per current node and class,
  // accumulated in example order (the scalar accumulation order).
  std::vector<double> base(2, 0.0);
  for (std::size_t i = 0; i < n; ++i) base[cell[i]] += weights[i];

  // Surviving candidates in candidate order (the scalar scan and tie-break
  // order), each carrying its per-cell masses from the previous level in a
  // buffer grown level by level (resize zero-fills exactly the upper-half
  // cells each new level gathers into).
  std::vector<std::size_t> scan = candidates;
  std::vector<std::vector<double>> masses(scan.size());

  std::vector<std::size_t> selected;
  selected.reserve(depth);
  double best_entropy_final = 0.0;
  std::size_t prev_winner = n_features;

  // Below this cell count, gathered adds collide on hot accumulators often
  // enough that split banks (and their fill + fold) pay for themselves.
  constexpr std::size_t kBankedCellLimit = 64;

  for (std::size_t level = 0; level < depth; ++level) {
    const std::size_t half_cells = base.size();  // 2^(level+1)
    std::vector<double> entropies(scan.size());
    const std::uint64_t* winner_col =
        level == 0 ? nullptr : features.column(prev_winner).words();
    const bool banked = half_cells < kBankedCellLimit;

    auto score_candidate = [&](std::size_t k) {
      const std::uint64_t* col = features.column(scan[k]).words();
      std::vector<double>& buf = masses[k];
      const std::size_t old_cells = half_cells / 2;
      if (banked) {
        // Reused per worker thread: one allocation per thread per training
        // run instead of one per candidate per level.
        static thread_local std::vector<double> banks;
        banks.assign(2 * half_cells, 0.0);
        gather_masked_weights(col, winner_col, n, cell.data(),
                              weights.data(), banks.data(), half_cells);
        buf.resize(half_cells);
        // Gathered cells land in the upper half of [0, half_cells) when a
        // winner mask was applied (their winner bit is set); at level 0 the
        // whole range is live.
        for (std::size_t c = level == 0 ? 0 : old_cells; c < half_cells; ++c) {
          buf[c] = banks[c] + banks[half_cells + c];
        }
      } else {
        // resize zero-fills [old_cells, half_cells), the exact range the
        // gather accumulates into.
        buf.resize(half_cells);
        gather_masked_weights(col, winner_col, n, cell.data(),
                              weights.data(), buf.data(), /*stride=*/0);
      }
      if (level != 0) {
        // The winner-bit-0 halves follow in place by subtracting from the
        // carried masses, which occupy the lower half under the same
        // indices.
        for (std::size_t idx = 0; idx < old_cells; ++idx) {
          buf[idx] -= buf[idx + old_cells];
        }
      }
      // buf[c] is the candidate-bit-1 mass of cell c; the bit-0 mass is
      // base[c] - buf[c]. Node order matches the scalar bucket order: all
      // candidate-bit-0 nodes, then all candidate-bit-1 nodes. Both halves
      // accumulate through the backend's batched entropy kernel, chained via
      // its `init` accumulator so the node order (and therefore the score)
      // is exactly the old per-node loop's. The subtractions can land a few
      // ulps below zero when the halves round differently; clamp into the
      // pair buffer before the kernel sees them.
      static thread_local std::vector<double> pairs;
      pairs.resize(half_cells);
      for (std::size_t b = 0; b < half_cells; ++b) {
        pairs[b] = std::max(0.0, base[b] - buf[b]);
      }
      const WordOps& ops = word_ops();
      double level_entropy = ops.entropy_sum(pairs.data(), half_cells / 2, 0.0);
      for (std::size_t b = 0; b < half_cells; ++b) {
        pairs[b] = std::max(0.0, buf[b]);
      }
      entropies[k] =
          ops.entropy_sum(pairs.data(), half_cells / 2, level_entropy);
    };

    if (engine != nullptr) {
      engine->parallel_for(scan.size(), score_candidate);
    } else {
      for (std::size_t k = 0; k < scan.size(); ++k) score_candidate(k);
    }

    double min_entropy = std::numeric_limits<double>::infinity();
    std::size_t best_feature = n_features;  // sentinel
    std::size_t best_index = scan.size();
    for (std::size_t k = 0; k < scan.size(); ++k) {
      if (entropies[k] < min_entropy) {
        min_entropy = entropies[k];
        best_feature = scan[k];
        best_index = k;
      }
    }
    POETBIN_CHECK(best_feature < n_features);
    selected.push_back(best_feature);
    scan.erase(scan.begin() + static_cast<std::ptrdiff_t>(best_index));
    masses.erase(masses.begin() + static_cast<std::ptrdiff_t>(best_index));
    prev_winner = best_feature;

    // Fold the winner's bit into the cells...
    const std::uint64_t* col = features.column(best_feature).words();
    const std::uint32_t bump = 2u << level;  // 1 << level in node_id terms
    for (std::size_t w = 0; w < n_words; ++w) {
      std::uint64_t mask = col[w];
      if (w + 1 == n_words) mask &= BitVector::tail_word_mask(n);
      const std::size_t row0 = w * 64;
      while (mask != 0) {
        cell[row0 + static_cast<std::size_t>(std::countr_zero(mask))] += bump;
        mask &= mask - 1;
      }
    }
    // ...and rebuild base exactly. This equals the scalar path's winning
    // `counts` array bit for bit, so the diagnostic entropy matches too.
    base.assign(half_cells * 2, 0.0);
    for (std::size_t i = 0; i < n; ++i) base[cell[i]] += weights[i];
    best_entropy_final =
        word_ops().entropy_sum(base.data(), base.size() / 2, 0.0);
  }

  // After the last level, base holds the per-(leaf cell, class) masses —
  // the scalar path's cell_mass. Same S0 <= S1 labelling rule.
  const std::size_t n_cells = std::size_t{1} << depth;
  BitVector table(n_cells);
  for (std::size_t c = 0; c < n_cells; ++c) {
    if (base[c * 2] <= base[c * 2 + 1]) table.set(c, true);
  }

  LevelDtResult result;
  result.lut = Lut(std::move(selected), std::move(table));
  result.final_entropy = best_entropy_final;

  double error = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool predicted = result.lut.lookup(cell[i] >> 1);
    if (predicted != ((cell[i] & 1u) != 0)) error += weights[i];
  }
  const double total_weight =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  result.weighted_error = total_weight > 0.0 ? error / total_weight : 0.0;
  return result;
}

}  // namespace

LevelDtResult train_level_dt(const BitMatrix& features, const BitVector& targets,
                             std::span<const double> weights,
                             const LevelDtConfig& config,
                             const BatchEngine* engine) {
  const std::size_t n = features.rows();
  const std::size_t n_features = features.cols();
  POETBIN_CHECK(targets.size() == n);
  POETBIN_CHECK(config.n_inputs >= 1);
  POETBIN_CHECK_MSG(config.n_inputs <= 16, "LUT arity beyond hardware range");
  POETBIN_CHECK_MSG(n > 0, "cannot train on an empty dataset");

  std::vector<double> uniform;
  if (weights.empty()) {
    uniform.assign(n, 1.0 / static_cast<double>(n));
    weights = uniform;
  }
  POETBIN_CHECK(weights.size() == n);

  std::vector<std::size_t> candidates;
  if (config.candidate_features.empty()) {
    candidates.resize(n_features);
    std::iota(candidates.begin(), candidates.end(), std::size_t{0});
  } else {
    // Deduplicate, keeping first-occurrence order (the tie-break order).
    // Duplicates would otherwise pass the size check below yet run the
    // level loop out of usable features mid-scan.
    std::vector<bool> seen(n_features, false);
    candidates.reserve(config.candidate_features.size());
    for (const auto c : config.candidate_features) {
      POETBIN_CHECK(c < n_features);
      if (seen[c]) continue;
      seen[c] = true;
      candidates.push_back(c);
    }
  }
  const std::size_t depth = std::min(config.n_inputs, candidates.size());
  POETBIN_CHECK_MSG(depth == config.n_inputs,
                    "not enough candidate features for the requested LUT arity");

  // The recurrence carries one 2^P-double mass buffer per candidate at the
  // final level; cap the total and fall back to the scalar scan (identical
  // results) rather than risk exhausting memory on extreme P x
  // candidate-count combinations.
  constexpr std::size_t kMaxCarriedBytes = std::size_t{1} << 28;  // 256 MiB
  const std::size_t carried_bytes =
      (candidates.size() << depth) * sizeof(double);
  if (config.word_parallel && carried_bytes <= kMaxCarriedBytes) {
    return train_bitsliced(features, targets, weights, candidates, depth,
                           engine);
  }
  return train_scalar(features, targets, weights, candidates, depth);
}

}  // namespace poetbin
