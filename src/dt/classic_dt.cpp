#include "dt/classic_dt.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <set>

#include "dt/entropy.h"
#include "util/check.h"

namespace poetbin {

ClassicDt ClassicDt::train(const BitMatrix& features, const BitVector& targets,
                           std::span<const double> weights,
                           const ClassicDtConfig& config) {
  const std::size_t n = features.rows();
  POETBIN_CHECK(targets.size() == n);
  POETBIN_CHECK(n > 0);

  std::vector<double> uniform;
  if (weights.empty()) {
    uniform.assign(n, 1.0 / static_cast<double>(n));
    weights = uniform;
  }
  POETBIN_CHECK(weights.size() == n);
  const double root_weight =
      std::accumulate(weights.begin(), weights.end(), 0.0);

  ClassicDt tree;
  std::vector<std::size_t> examples(n);
  std::iota(examples.begin(), examples.end(), std::size_t{0});
  std::vector<bool> used_on_path(features.cols(), false);
  tree.root_ = tree.build(features, targets, weights, examples, used_on_path,
                          /*depth=*/0, config, root_weight);
  return tree;
}

int ClassicDt::build(const BitMatrix& features, const BitVector& targets,
                     std::span<const double> weights,
                     std::vector<std::size_t>& examples,
                     std::vector<bool>& used_on_path, std::size_t depth,
                     const ClassicDtConfig& config, double root_weight) {
  double mass0 = 0.0;
  double mass1 = 0.0;
  for (const auto i : examples) {
    (targets.get(i) ? mass1 : mass0) += weights[i];
  }
  const double node_weight = mass0 + mass1;
  const bool majority = mass0 <= mass1;

  auto make_leaf = [&]() {
    Node leaf;
    leaf.label = majority;
    nodes_.push_back(leaf);
    return static_cast<int>(nodes_.size() - 1);
  };

  if (depth >= config.max_depth || mass0 == 0.0 || mass1 == 0.0 ||
      node_weight < config.min_node_weight_fraction * root_weight ||
      examples.empty()) {
    return make_leaf();
  }

  // Pick the feature minimising the weighted entropy of the two children.
  double best_entropy = std::numeric_limits<double>::infinity();
  std::size_t best_feature = features.cols();
  for (std::size_t f = 0; f < features.cols(); ++f) {
    if (used_on_path[f]) continue;
    const BitVector& column = features.column(f);
    double c0[2] = {0.0, 0.0};
    double c1[2] = {0.0, 0.0};
    for (const auto i : examples) {
      const bool bit = column.get(i);
      const bool target = targets.get(i);
      (bit ? c1 : c0)[target ? 1 : 0] += weights[i];
    }
    const double split_entropy = weighted_node_entropy(c0[0], c0[1]) +
                                 weighted_node_entropy(c1[0], c1[1]);
    if (split_entropy < best_entropy) {
      best_entropy = split_entropy;
      best_feature = f;
    }
  }
  if (best_feature >= features.cols()) return make_leaf();

  // No-gain split -> leaf (prevents useless growth on constant columns).
  const double parent_entropy = weighted_node_entropy(mass0, mass1);
  if (best_entropy >= parent_entropy - 1e-12) return make_leaf();

  std::vector<std::size_t> left_examples;
  std::vector<std::size_t> right_examples;
  const BitVector& column = features.column(best_feature);
  for (const auto i : examples) {
    (column.get(i) ? right_examples : left_examples).push_back(i);
  }
  if (left_examples.empty() || right_examples.empty()) return make_leaf();

  used_on_path[best_feature] = true;
  const int left = build(features, targets, weights, left_examples,
                         used_on_path, depth + 1, config, root_weight);
  const int right = build(features, targets, weights, right_examples,
                          used_on_path, depth + 1, config, root_weight);
  used_on_path[best_feature] = false;

  Node node;
  node.feature = best_feature;
  node.left = left;
  node.right = right;
  node.label = majority;
  nodes_.push_back(node);
  return static_cast<int>(nodes_.size() - 1);
}

bool ClassicDt::eval(const BitVector& example_bits) const {
  POETBIN_CHECK(root_ >= 0);
  int cursor = root_;
  for (;;) {
    const Node& node = nodes_[static_cast<std::size_t>(cursor)];
    if (node.feature == Node::kLeaf) return node.label;
    cursor = example_bits.get(node.feature) ? node.right : node.left;
  }
}

BitVector ClassicDt::eval_dataset(const BitMatrix& features) const {
  BitVector out(features.rows());
  for (std::size_t i = 0; i < features.rows(); ++i) {
    int cursor = root_;
    for (;;) {
      const Node& node = nodes_[static_cast<std::size_t>(cursor)];
      if (node.feature == Node::kLeaf) {
        if (node.label) out.set(i, true);
        break;
      }
      cursor = features.get(i, node.feature) ? node.right : node.left;
    }
  }
  return out;
}

std::size_t ClassicDt::leaf_count() const {
  std::size_t count = 0;
  for (const auto& node : nodes_) {
    if (node.feature == Node::kLeaf) ++count;
  }
  return count;
}

std::size_t ClassicDt::depth_below(int node) const {
  if (node < 0) return 0;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  if (n.feature == Node::kLeaf) return 0;
  return 1 + std::max(depth_below(n.left), depth_below(n.right));
}

std::size_t ClassicDt::depth() const { return depth_below(root_); }

std::size_t ClassicDt::distinct_features() const {
  std::set<std::size_t> features;
  for (const auto& node : nodes_) {
    if (node.feature != Node::kLeaf) features.insert(node.feature);
  }
  return features.size();
}

double ClassicDt::weighted_error(const BitMatrix& features,
                                 const BitVector& targets,
                                 std::span<const double> weights) const {
  const BitVector predictions = eval_dataset(features);
  double error = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < features.rows(); ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    total += w;
    if (predictions.get(i) != targets.get(i)) error += w;
  }
  return total > 0.0 ? error / total : 0.0;
}

}  // namespace poetbin
