#include "dt/lut.h"

#include "util/check.h"

namespace poetbin {

namespace {

WordVec splat_of(const BitVector& table) {
  WordVec splat(table.size());
  for (std::size_t a = 0; a < table.size(); ++a) {
    splat[a] = table.get(a) ? ~0ULL : 0ULL;
  }
  return splat;
}

}  // namespace

Lut::Lut(std::vector<std::size_t> inputs, BitVector table)
    : inputs_(std::move(inputs)), table_(std::move(table)) {
  POETBIN_CHECK_MSG(inputs_.size() < 24, "LUT arity unrealistically large");
  POETBIN_CHECK(table_.size() == (std::size_t{1} << inputs_.size()));
  splat_ = WordStorage(splat_of(table_));
}

Lut::Lut(std::vector<std::size_t> inputs, BitVector table, WordStorage splat)
    : inputs_(std::move(inputs)),
      table_(std::move(table)),
      splat_(std::move(splat)) {
  POETBIN_CHECK_MSG(inputs_.size() < 24, "LUT arity unrealistically large");
  POETBIN_CHECK(table_.size() == (std::size_t{1} << inputs_.size()));
  POETBIN_CHECK_MSG(splat_.size() == table_.size(),
                    "pre-splatted LUT table has the wrong word count");
}

std::size_t Lut::address_of(const BitVector& example_bits) const {
  std::size_t address = 0;
  for (std::size_t j = 0; j < inputs_.size(); ++j) {
    POETBIN_CHECK(inputs_[j] < example_bits.size());
    if (example_bits.get(inputs_[j])) address |= std::size_t{1} << j;
  }
  return address;
}

BitVector Lut::eval_dataset(const BitMatrix& features) const {
  const std::size_t n = features.rows();
  BitVector out(n);
  const auto addrs = addresses(features);
  for (std::size_t i = 0; i < n; ++i) {
    if (table_.get(addrs[i])) out.set(i, true);
  }
  return out;
}

std::vector<std::size_t> Lut::addresses(const BitMatrix& features) const {
  const std::size_t n = features.rows();
  std::vector<std::size_t> addrs(n, 0);
  for (std::size_t j = 0; j < inputs_.size(); ++j) {
    POETBIN_CHECK(inputs_[j] < features.cols());
    const BitVector& column = features.column(inputs_[j]);
    const std::uint64_t* words = column.words();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t bit = (words[i >> 6] >> (i & 63)) & 1ULL;
      addrs[i] |= bit << j;
    }
  }
  return addrs;
}

}  // namespace poetbin
