// Dataset containers.
//
// `ImageDataset` holds dense float images (the input to the vanilla / teacher
// networks); `BinaryDataset` holds packed binary feature vectors (the input
// to RINC modules and all baselines' classifier portions).
#pragma once

#include <cstddef>
#include <vector>

#include "util/bit_matrix.h"
#include "util/check.h"
#include "util/rng.h"

namespace poetbin {

struct ImageDataset {
  std::size_t channels = 0;
  std::size_t height = 0;
  std::size_t width = 0;
  std::size_t n_classes = 0;
  // Row-major: images[i * image_size() + k].
  std::vector<float> pixels;
  std::vector<int> labels;

  std::size_t image_size() const { return channels * height * width; }
  std::size_t size() const { return labels.size(); }

  const float* image(std::size_t i) const {
    POETBIN_CHECK(i < size());
    return pixels.data() + i * image_size();
  }
  float* image(std::size_t i) {
    POETBIN_CHECK(i < size());
    return pixels.data() + i * image_size();
  }
};

struct BinaryDataset {
  BitMatrix features;  // n_examples x n_features, feature-major packed
  std::vector<int> labels;
  std::size_t n_classes = 0;

  std::size_t size() const { return labels.size(); }
  std::size_t n_features() const { return features.cols(); }

  // Subset with rows reordered/selected; labels follow.
  BinaryDataset select(const std::vector<std::size_t>& rows) const;
};

// In-place Fisher-Yates shuffle of examples (pixels and labels together).
void shuffle_dataset(ImageDataset& dataset, Rng& rng);

// Split off the first `n_first` examples (after any shuffling done by the
// caller) into the first returned dataset; the rest go into the second.
std::pair<ImageDataset, ImageDataset> split_dataset(const ImageDataset& dataset,
                                                    std::size_t n_first);

// Class frequency histogram; useful for sanity checks in tests.
std::vector<std::size_t> class_histogram(const std::vector<int>& labels,
                                         std::size_t n_classes);

}  // namespace poetbin
