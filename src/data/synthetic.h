// Synthetic image-classification datasets.
//
// The paper evaluates on MNIST, SVHN and CIFAR-10, none of which are
// available offline here. PoET-BiN's algorithms operate on the *binary
// feature vectors* produced by a trained feature extractor, so any image
// family with learnable class structure exercises identical code paths.
// We generate three 10-class families of graded difficulty mirroring the
// paper's ordering (MNIST easiest, SVHN middle, CIFAR-10 hardest):
//
//  - Digits:       grayscale 16x16 dot-matrix digits, small jitter + noise
//                  (MNIST stand-in).
//  - HouseNumbers: colour 16x16 digits over cluttered backgrounds with
//                  distractor digit fragments (SVHN stand-in).
//  - Textures:     colour 16x16 oriented gratings / blob mixtures whose
//                  class depends on orientation-frequency-colour statistics
//                  (CIFAR-10 stand-in, hardest).
//
// All generators are deterministic in the seed.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace poetbin {

enum class SyntheticFamily { kDigits, kHouseNumbers, kTextures };

struct SyntheticSpec {
  SyntheticFamily family = SyntheticFamily::kDigits;
  std::size_t n_examples = 1000;
  std::uint64_t seed = 1;
  // Pixel noise stddev; generators add family-specific clutter on top.
  double noise = 0.15;
};

ImageDataset make_synthetic(const SyntheticSpec& spec);

ImageDataset make_digits(std::size_t n_examples, std::uint64_t seed,
                         double noise = 0.15);
ImageDataset make_house_numbers(std::size_t n_examples, std::uint64_t seed,
                                double noise = 0.2);
ImageDataset make_textures(std::size_t n_examples, std::uint64_t seed,
                           double noise = 0.25);

const char* family_name(SyntheticFamily family);
// Which paper dataset the family stands in for ("MNIST", "SVHN", "CIFAR-10").
const char* family_paper_dataset(SyntheticFamily family);

}  // namespace poetbin
