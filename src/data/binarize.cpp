#include "data/binarize.h"

namespace poetbin {

BitMatrix binarize_activations(const std::vector<float>& activations,
                               std::size_t n_rows, std::size_t n_cols,
                               float threshold) {
  POETBIN_CHECK(activations.size() == n_rows * n_cols);
  BitMatrix bits(n_rows, n_cols);
  for (std::size_t r = 0; r < n_rows; ++r) {
    const float* row = activations.data() + r * n_cols;
    for (std::size_t c = 0; c < n_cols; ++c) {
      if (row[c] >= threshold) bits.set(r, c, true);
    }
  }
  return bits;
}

BitVector pack_targets(const std::vector<int>& values) {
  BitVector out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] != 0) out.set(i, true);
  }
  return out;
}

std::vector<double> column_means(const BitMatrix& bits) {
  std::vector<double> means(bits.cols(), 0.0);
  if (bits.rows() == 0) return means;
  for (std::size_t c = 0; c < bits.cols(); ++c) {
    means[c] = static_cast<double>(bits.column(c).popcount()) /
               static_cast<double>(bits.rows());
  }
  return means;
}

}  // namespace poetbin
