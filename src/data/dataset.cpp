#include "data/dataset.h"

#include <numeric>
#include <utility>

namespace poetbin {

BinaryDataset BinaryDataset::select(const std::vector<std::size_t>& rows) const {
  BinaryDataset out;
  out.features = features.select_rows(rows);
  out.labels.reserve(rows.size());
  for (const auto r : rows) {
    POETBIN_CHECK(r < labels.size());
    out.labels.push_back(labels[r]);
  }
  out.n_classes = n_classes;
  return out;
}

void shuffle_dataset(ImageDataset& dataset, Rng& rng) {
  const std::size_t n = dataset.size();
  if (n < 2) return;
  const std::size_t image_size = dataset.image_size();
  std::vector<float> tmp(image_size);
  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t j = rng.next_index(i + 1);
    if (i == j) continue;
    float* a = dataset.image(i);
    float* b = dataset.image(j);
    std::copy(a, a + image_size, tmp.begin());
    std::copy(b, b + image_size, a);
    std::copy(tmp.begin(), tmp.end(), b);
    std::swap(dataset.labels[i], dataset.labels[j]);
  }
}

std::pair<ImageDataset, ImageDataset> split_dataset(const ImageDataset& dataset,
                                                    std::size_t n_first) {
  POETBIN_CHECK(n_first <= dataset.size());
  const std::size_t image_size = dataset.image_size();

  auto make_part = [&](std::size_t begin, std::size_t end) {
    ImageDataset part;
    part.channels = dataset.channels;
    part.height = dataset.height;
    part.width = dataset.width;
    part.n_classes = dataset.n_classes;
    part.pixels.assign(dataset.pixels.begin() + begin * image_size,
                       dataset.pixels.begin() + end * image_size);
    part.labels.assign(dataset.labels.begin() + begin, dataset.labels.begin() + end);
    return part;
  };

  return {make_part(0, n_first), make_part(n_first, dataset.size())};
}

std::vector<std::size_t> class_histogram(const std::vector<int>& labels,
                                         std::size_t n_classes) {
  std::vector<std::size_t> histogram(n_classes, 0);
  for (const int label : labels) {
    POETBIN_CHECK(label >= 0 && static_cast<std::size_t>(label) < n_classes);
    ++histogram[static_cast<std::size_t>(label)];
  }
  return histogram;
}

}  // namespace poetbin
