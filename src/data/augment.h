// Image augmentation.
//
// The paper uses no augmentation "except for padding in CIFAR-10" — i.e.
// pad-and-random-crop, the standard CIFAR recipe. We provide exactly that
// plus horizontal flips (off by default to match the paper).
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace poetbin {

struct AugmentConfig {
  // Pad by `padding` pixels on every side, then crop back at a random
  // offset (pad-and-crop translation augmentation).
  std::size_t padding = 2;
  bool horizontal_flip = false;
  std::uint64_t seed = 51;
};

// Returns an augmented copy with one randomly shifted (and possibly
// flipped) variant per input example. Labels are preserved.
ImageDataset augment_dataset(const ImageDataset& dataset,
                             const AugmentConfig& config);

// In-place single-image ops, exposed for tests.
void shift_image(float* image, std::size_t channels, std::size_t height,
                 std::size_t width, int shift_row, int shift_col);
void flip_image_horizontal(float* image, std::size_t channels,
                           std::size_t height, std::size_t width);

}  // namespace poetbin
