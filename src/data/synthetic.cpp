#include "data/synthetic.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#include "util/rng.h"

namespace poetbin {

namespace {

constexpr std::size_t kSide = 16;

// 7x5 dot-matrix font for digits 0-9; '1' marks an on-pixel.
// Standard seven-segment-like shapes so classes are visually distinct but
// share strokes (e.g. 3/8/9), which gives the classifier a realistic
// confusion structure.
constexpr std::array<const char*, 10> kDigitFont = {
    // 0
    "01110"
    "10001"
    "10011"
    "10101"
    "11001"
    "10001"
    "01110",
    // 1
    "00100"
    "01100"
    "00100"
    "00100"
    "00100"
    "00100"
    "01110",
    // 2
    "01110"
    "10001"
    "00001"
    "00110"
    "01000"
    "10000"
    "11111",
    // 3
    "01110"
    "10001"
    "00001"
    "00110"
    "00001"
    "10001"
    "01110",
    // 4
    "00010"
    "00110"
    "01010"
    "10010"
    "11111"
    "00010"
    "00010",
    // 5
    "11111"
    "10000"
    "11110"
    "00001"
    "00001"
    "10001"
    "01110",
    // 6
    "00110"
    "01000"
    "10000"
    "11110"
    "10001"
    "10001"
    "01110",
    // 7
    "11111"
    "00001"
    "00010"
    "00100"
    "01000"
    "01000"
    "01000",
    // 8
    "01110"
    "10001"
    "10001"
    "01110"
    "10001"
    "10001"
    "01110",
    // 9
    "01110"
    "10001"
    "10001"
    "01111"
    "00001"
    "00010"
    "01100",
};

float clampf(float v, float lo, float hi) { return std::max(lo, std::min(hi, v)); }

// Paints a digit glyph onto a kSide x kSide single-channel canvas with the
// given top-left offset, per-example scale wobble and stroke intensity.
void paint_digit(float* canvas, int digit, int off_row, int off_col,
                 double scale_r, double scale_c, float intensity, Rng& rng,
                 double dropout) {
  const char* glyph = kDigitFont[static_cast<std::size_t>(digit)];
  for (int gr = 0; gr < 7; ++gr) {
    for (int gc = 0; gc < 5; ++gc) {
      if (glyph[gr * 5 + gc] != '1') continue;
      if (dropout > 0.0 && rng.next_bool(dropout)) continue;  // broken stroke
      // Each glyph cell covers a ~scale x scale block of pixels.
      const int r0 = off_row + static_cast<int>(std::lround(gr * scale_r));
      const int c0 = off_col + static_cast<int>(std::lround(gc * scale_c));
      const int r1 = off_row + static_cast<int>(std::lround((gr + 1) * scale_r));
      const int c1 = off_col + static_cast<int>(std::lround((gc + 1) * scale_c));
      for (int r = r0; r < std::max(r1, r0 + 1); ++r) {
        for (int c = c0; c < std::max(c1, c0 + 1); ++c) {
          if (r < 0 || c < 0 || r >= static_cast<int>(kSide) ||
              c >= static_cast<int>(kSide)) {
            continue;
          }
          canvas[r * kSide + c] =
              clampf(canvas[r * kSide + c] + intensity, 0.0f, 1.0f);
        }
      }
    }
  }
}

ImageDataset make_empty(std::size_t channels, std::size_t n_examples) {
  ImageDataset dataset;
  dataset.channels = channels;
  dataset.height = kSide;
  dataset.width = kSide;
  dataset.n_classes = 10;
  dataset.pixels.assign(n_examples * channels * kSide * kSide, 0.0f);
  dataset.labels.assign(n_examples, 0);
  return dataset;
}

void add_noise(float* image, std::size_t size, double stddev, Rng& rng) {
  for (std::size_t i = 0; i < size; ++i) {
    image[i] = clampf(image[i] + static_cast<float>(rng.gaussian(0.0, stddev)),
                      0.0f, 1.0f);
  }
}

// Soft elliptical blob used for background clutter.
void paint_blob(float* canvas, double center_r, double center_c, double radius,
                float intensity) {
  for (std::size_t r = 0; r < kSide; ++r) {
    for (std::size_t c = 0; c < kSide; ++c) {
      const double dr = (static_cast<double>(r) - center_r) / radius;
      const double dc = (static_cast<double>(c) - center_c) / radius;
      const double d2 = dr * dr + dc * dc;
      if (d2 < 1.0) {
        canvas[r * kSide + c] = clampf(
            canvas[r * kSide + c] + intensity * static_cast<float>(1.0 - d2),
            0.0f, 1.0f);
      }
    }
  }
}

}  // namespace

ImageDataset make_digits(std::size_t n_examples, std::uint64_t seed, double noise) {
  ImageDataset dataset = make_empty(/*channels=*/1, n_examples);
  Rng rng(seed);
  for (std::size_t i = 0; i < n_examples; ++i) {
    const int digit = static_cast<int>(rng.next_below(10));
    dataset.labels[i] = digit;
    float* image = dataset.image(i);

    const double scale_r = rng.uniform(1.5, 1.9);  // 7 rows -> ~10-13 px
    const double scale_c = rng.uniform(1.8, 2.3);  // 5 cols -> ~9-11 px
    const int max_row = static_cast<int>(kSide - std::lround(7 * scale_r));
    const int max_col = static_cast<int>(kSide - std::lround(5 * scale_c));
    const int off_row = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(std::max(1, max_row + 1))));
    const int off_col = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(std::max(1, max_col + 1))));
    const float intensity = static_cast<float>(rng.uniform(0.75, 1.0));

    paint_digit(image, digit, off_row, off_col, scale_r, scale_c, intensity, rng,
                /*dropout=*/0.02);
    add_noise(image, kSide * kSide, noise, rng);
  }
  return dataset;
}

ImageDataset make_house_numbers(std::size_t n_examples, std::uint64_t seed,
                                double noise) {
  ImageDataset dataset = make_empty(/*channels=*/3, n_examples);
  Rng rng(seed);
  const std::size_t plane = kSide * kSide;
  std::vector<float> glyph_plane(plane);

  for (std::size_t i = 0; i < n_examples; ++i) {
    const int digit = static_cast<int>(rng.next_below(10));
    dataset.labels[i] = digit;
    float* image = dataset.image(i);

    // Background: a base colour plus 2-4 clutter blobs per channel group.
    const float bg[3] = {static_cast<float>(rng.uniform(0.0, 0.45)),
                         static_cast<float>(rng.uniform(0.0, 0.45)),
                         static_cast<float>(rng.uniform(0.0, 0.45))};
    for (int ch = 0; ch < 3; ++ch) {
      std::fill(image + ch * plane, image + (ch + 1) * plane, bg[ch]);
    }
    const std::size_t n_blobs = 2 + rng.next_below(3);
    for (std::size_t b = 0; b < n_blobs; ++b) {
      const double cr = rng.uniform(0.0, kSide);
      const double cc = rng.uniform(0.0, kSide);
      const double radius = rng.uniform(2.0, 5.0);
      for (int ch = 0; ch < 3; ++ch) {
        paint_blob(image + ch * plane, cr, cc, radius,
                   static_cast<float>(rng.uniform(-0.25, 0.3)));
      }
    }

    // Distractor: fragment of a *different* digit near the border, as in
    // SVHN's multi-digit crops.
    std::fill(glyph_plane.begin(), glyph_plane.end(), 0.0f);
    const int distractor = static_cast<int>(rng.next_below(10));
    const int side_off = rng.next_bool() ? -4 : static_cast<int>(kSide) - 4;
    paint_digit(glyph_plane.data(), distractor, 2, side_off, 1.6, 2.0, 0.5f, rng,
                0.3);

    // Main digit, centred-ish, painted in its own foreground colour.
    const double scale_r = rng.uniform(1.4, 1.8);
    const double scale_c = rng.uniform(1.7, 2.2);
    const int off_row = 1 + static_cast<int>(rng.next_below(3));
    const int off_col = 2 + static_cast<int>(rng.next_below(3));
    paint_digit(glyph_plane.data(), digit, off_row, off_col, scale_r, scale_c,
                1.0f, rng, 0.05);

    const float fg[3] = {static_cast<float>(rng.uniform(0.5, 1.0)),
                         static_cast<float>(rng.uniform(0.5, 1.0)),
                         static_cast<float>(rng.uniform(0.5, 1.0))};
    for (int ch = 0; ch < 3; ++ch) {
      float* channel = image + ch * plane;
      for (std::size_t p = 0; p < plane; ++p) {
        channel[p] = clampf(channel[p] + glyph_plane[p] * fg[ch], 0.0f, 1.0f);
      }
    }
    add_noise(image, 3 * plane, noise, rng);
  }
  return dataset;
}

ImageDataset make_textures(std::size_t n_examples, std::uint64_t seed,
                           double noise) {
  ImageDataset dataset = make_empty(/*channels=*/3, n_examples);
  Rng rng(seed);
  const std::size_t plane = kSide * kSide;
  const double pi = 3.14159265358979323846;

  for (std::size_t i = 0; i < n_examples; ++i) {
    const int label = static_cast<int>(rng.next_below(10));
    dataset.labels[i] = label;
    float* image = dataset.image(i);

    // Class k defines a grating orientation, spatial frequency and a colour
    // tilt; instances jitter all three plus phase, so no single pixel is
    // class-determining (CIFAR-like global statistics). The jitters are
    // wide enough that neighbouring classes overlap — this family must be
    // the hardest of the three, mirroring CIFAR-10's role in the paper.
    const double orientation =
        (label % 5) * (pi / 5.0) + rng.gaussian(0.0, 0.22);
    const double frequency =
        (label < 5 ? 0.62 : 0.88) + rng.gaussian(0.0, 0.09);
    const double phase = rng.uniform(0.0, 2.0 * pi);
    const double colour_tilt = (label % 3) * 0.35 + rng.gaussian(0.0, 0.18);

    const double dir_r = std::sin(orientation);
    const double dir_c = std::cos(orientation);
    for (std::size_t r = 0; r < kSide; ++r) {
      for (std::size_t c = 0; c < kSide; ++c) {
        const double t =
            frequency * (dir_r * static_cast<double>(r) +
                         dir_c * static_cast<double>(c)) +
            phase;
        const float base = static_cast<float>(0.5 + 0.4 * std::sin(t));
        image[0 * plane + r * kSide + c] =
            clampf(base * static_cast<float>(1.0 - 0.3 * colour_tilt), 0.f, 1.f);
        image[1 * plane + r * kSide + c] =
            clampf(base * static_cast<float>(0.7 + 0.2 * colour_tilt), 0.f, 1.f);
        image[2 * plane + r * kSide + c] =
            clampf(static_cast<float>(0.5 + 0.4 * std::cos(t)) *
                       static_cast<float>(0.6 + 0.25 * colour_tilt),
                   0.f, 1.f);
      }
    }

    // Blob occluders mimic object-vs-background variation; even-numbered
    // classes get one extra blob.
    const std::size_t n_blobs = 2 + rng.next_below(3) + (label % 2 == 0 ? 1 : 0);
    for (std::size_t b = 0; b < n_blobs; ++b) {
      const double cr = rng.uniform(2.0, kSide - 2.0);
      const double cc = rng.uniform(2.0, kSide - 2.0);
      const double radius = rng.uniform(1.5, 4.5);
      const int channel = static_cast<int>(rng.next_below(3));
      paint_blob(image + channel * plane, cr, cc, radius,
                 static_cast<float>(rng.uniform(-0.55, 0.55)));
    }
    add_noise(image, 3 * plane, noise, rng);
  }
  return dataset;
}

ImageDataset make_synthetic(const SyntheticSpec& spec) {
  switch (spec.family) {
    case SyntheticFamily::kDigits:
      return make_digits(spec.n_examples, spec.seed, spec.noise);
    case SyntheticFamily::kHouseNumbers:
      return make_house_numbers(spec.n_examples, spec.seed, spec.noise);
    case SyntheticFamily::kTextures:
      return make_textures(spec.n_examples, spec.seed, spec.noise);
  }
  POETBIN_CHECK_MSG(false, "unknown synthetic family");
}

const char* family_name(SyntheticFamily family) {
  switch (family) {
    case SyntheticFamily::kDigits: return "digits";
    case SyntheticFamily::kHouseNumbers: return "house_numbers";
    case SyntheticFamily::kTextures: return "textures";
  }
  return "?";
}

const char* family_paper_dataset(SyntheticFamily family) {
  switch (family) {
    case SyntheticFamily::kDigits: return "MNIST";
    case SyntheticFamily::kHouseNumbers: return "SVHN";
    case SyntheticFamily::kTextures: return "CIFAR-10";
  }
  return "?";
}

}  // namespace poetbin
