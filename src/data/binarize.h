// Conversion from dense float activations to packed binary features.
//
// The paper obtains binary features by replacing the ReLU after the last
// convolutional layer with a binary sigmoid (Kwan 1992): forward pass emits
// 1 iff the pre-activation is >= 0. `binarize_activations` applies exactly
// that thresholding to a dense (n x F) activation matrix.
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "util/bit_matrix.h"

namespace poetbin {

// activations: row-major n_rows x n_cols. Bit (r, c) = activations[r*n_cols+c] >= threshold.
BitMatrix binarize_activations(const std::vector<float>& activations,
                               std::size_t n_rows, std::size_t n_cols,
                               float threshold = 0.0f);

// Convenience: packs one binary label vector "is class c" for one-vs-all /
// per-neuron distillation targets.
BitVector pack_targets(const std::vector<int>& values);

// Fraction of set bits per column; used to verify binary features are not
// degenerate (all-0 / all-1 columns carry no information for any DT).
std::vector<double> column_means(const BitMatrix& bits);

}  // namespace poetbin
