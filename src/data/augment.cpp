#include "data/augment.h"

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace poetbin {

void shift_image(float* image, std::size_t channels, std::size_t height,
                 std::size_t width, int shift_row, int shift_col) {
  const std::size_t plane = height * width;
  std::vector<float> original(image, image + channels * plane);
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t r = 0; r < height; ++r) {
      for (std::size_t col = 0; col < width; ++col) {
        const long src_r = static_cast<long>(r) - shift_row;
        const long src_c = static_cast<long>(col) - shift_col;
        float value = 0.0f;  // zero padding outside the original frame
        if (src_r >= 0 && src_c >= 0 && src_r < static_cast<long>(height) &&
            src_c < static_cast<long>(width)) {
          value = original[c * plane + static_cast<std::size_t>(src_r) * width +
                           static_cast<std::size_t>(src_c)];
        }
        image[c * plane + r * width + col] = value;
      }
    }
  }
}

void flip_image_horizontal(float* image, std::size_t channels,
                           std::size_t height, std::size_t width) {
  const std::size_t plane = height * width;
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t r = 0; r < height; ++r) {
      float* row = image + c * plane + r * width;
      std::reverse(row, row + width);
    }
  }
}

ImageDataset augment_dataset(const ImageDataset& dataset,
                             const AugmentConfig& config) {
  ImageDataset augmented = dataset;
  Rng rng(config.seed);
  const int pad = static_cast<int>(config.padding);
  for (std::size_t i = 0; i < augmented.size(); ++i) {
    float* image = augmented.image(i);
    if (pad > 0) {
      // Pad-and-crop == shift by a uniform offset in [-pad, pad].
      const int shift_row =
          static_cast<int>(rng.next_below(2 * config.padding + 1)) - pad;
      const int shift_col =
          static_cast<int>(rng.next_below(2 * config.padding + 1)) - pad;
      if (shift_row != 0 || shift_col != 0) {
        shift_image(image, augmented.channels, augmented.height,
                    augmented.width, shift_row, shift_col);
      }
    }
    if (config.horizontal_flip && rng.next_bool()) {
      flip_image_horizontal(image, augmented.channels, augmented.height,
                            augmented.width);
    }
  }
  return augmented;
}

}  // namespace poetbin
