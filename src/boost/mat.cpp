#include "boost/mat.h"

#include <numeric>

#include "util/check.h"

namespace poetbin {

MatModule::MatModule(std::vector<double> weights) : weights_(std::move(weights)) {
  POETBIN_CHECK_MSG(!weights_.empty(), "MAT needs at least one input");
  POETBIN_CHECK_MSG(weights_.size() <= 20, "MAT arity beyond LUT range");
}

double MatModule::threshold() const {
  return std::accumulate(weights_.begin(), weights_.end(), 0.0) / 2.0;
}

double MatModule::margin(std::size_t combo) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    const double sign = (combo >> i) & 1 ? 1.0 : -1.0;
    sum += weights_[i] * sign;
  }
  return sum;
}

BitVector MatModule::to_table() const {
  const std::size_t n_combos = std::size_t{1} << weights_.size();
  BitVector table(n_combos);
  for (std::size_t combo = 0; combo < n_combos; ++combo) {
    if (eval_combo(combo)) table.set(combo, true);
  }
  return table;
}

std::vector<bool> MatModule::removable_inputs() const {
  const std::size_t arity = weights_.size();
  std::vector<bool> removable(arity, true);
  const std::size_t n_combos = std::size_t{1} << arity;
  for (std::size_t combo = 0; combo < n_combos; ++combo) {
    const bool out = eval_combo(combo);
    for (std::size_t i = 0; i < arity; ++i) {
      if (!removable[i]) continue;
      if (eval_combo(combo ^ (std::size_t{1} << i)) != out) removable[i] = false;
    }
  }
  return removable;
}

}  // namespace poetbin
