// MAT module: the Multiply-Add-Threshold combiner of Fig. 2.
//
// Given G weak-classifier output bits b_i and their Adaboost weights w_i,
// the MAT output is sign(sum_i w_i (2 b_i - 1)) — equivalently
// sum_i w_i b_i >= (sum_i w_i) / 2, the thresholded weighted sum the paper
// describes. Because the inputs are G bits, the whole operation folds into
// a single G-input LUT built by enumerating all 2^G combinations of the
// *trained* weights; the LUT is the artefact that ships to hardware, the
// float path exists only for training and cross-checks.
#pragma once

#include <cstddef>
#include <vector>

#include "util/bitvector.h"

namespace poetbin {

class MatModule {
 public:
  MatModule() = default;
  explicit MatModule(std::vector<double> weights);

  std::size_t arity() const { return weights_.size(); }
  const std::vector<double>& weights() const { return weights_; }

  // Threshold in the {0,1} formulation: sum_i w_i b_i >= threshold().
  double threshold() const;

  // Signed margin sum_i w_i (2 b_i - 1) for the combination encoded as a
  // bitmask (bit i = weak classifier i's output).
  double margin(std::size_t combo) const;

  // Output for a combination; ties (margin == 0) resolve to 1, matching the
  // ">=" comparator in Fig. 2.
  bool eval_combo(std::size_t combo) const { return margin(combo) >= 0.0; }

  // Truth table over all 2^G combinations (LUT contents).
  BitVector to_table() const;

  // Input i is removable when flipping bit i can never change the output —
  // exactly the near-zero-weight fanins the paper reports the Xilinx
  // synthesizer strips (§4.3). Exhaustive over 2^(G-1) combos.
  std::vector<bool> removable_inputs() const;

 private:
  std::vector<double> weights_;
};

}  // namespace poetbin
