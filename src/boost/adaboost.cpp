#include "boost/adaboost.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"
#include "util/word_backend.h"

namespace poetbin {

AdaboostResult run_adaboost(const BitVector& targets, WeakTrainFn train_weak,
                            const AdaboostConfig& config,
                            std::span<const double> initial_weights) {
  const std::size_t n = targets.size();
  POETBIN_CHECK(n > 0);
  POETBIN_CHECK(config.n_rounds >= 1);
  POETBIN_CHECK_MSG(config.n_rounds <= 64,
                    "n_rounds > 64 would overflow the 64-bit combo bitmask of "
                    "the combined prediction; use at most 64 rounds per MAT");

  std::vector<double> weights;
  if (initial_weights.empty()) {
    weights.assign(n, 1.0 / static_cast<double>(n));
  } else {
    POETBIN_CHECK(initial_weights.size() == n);
    double initial_total = 0.0;
    for (const double w : initial_weights) {
      POETBIN_CHECK_MSG(w >= 0.0, "initial_weights must be non-negative");
      initial_total += w;
    }
    POETBIN_CHECK_MSG(initial_total > 0.0,
                      "initial_weights must carry positive total mass; an "
                      "all-zero distribution cannot be boosted");
    weights.assign(initial_weights.begin(), initial_weights.end());
  }

  AdaboostResult result;
  std::vector<double> alphas;
  std::vector<BitVector> round_predictions;
  alphas.reserve(config.n_rounds);
  round_predictions.reserve(config.n_rounds);

  BitVector disagreement;  // preds ^ targets, reused across rounds

  for (std::size_t round = 0; round < config.n_rounds; ++round) {
    BitVector predictions = train_weak(weights, round);
    POETBIN_CHECK(predictions.size() == n);

    double epsilon = 0.0;
    double total = 0.0;
    if (config.word_parallel) {
      // One xor pass gives the disagreement mask; epsilon is then a masked
      // weighted sum over its words. Both accumulators add the same terms in
      // the same order as the scalar loop, so the doubles are identical.
      predictions.xor_into(targets, disagreement);
      total = std::accumulate(weights.begin(), weights.end(), 0.0);
      epsilon = disagreement.masked_weighted_sum(weights);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        total += weights[i];
        if (predictions.get(i) != targets.get(i)) epsilon += weights[i];
      }
    }
    POETBIN_CHECK(total > 0.0);
    epsilon /= total;

    const double clamped =
        std::clamp(epsilon, config.epsilon_clamp, 1.0 - config.epsilon_clamp);
    const double alpha = 0.5 * std::log((1.0 - clamped) / clamped);

    result.rounds.push_back({alpha, epsilon});
    alphas.push_back(alpha);
    round_predictions.push_back(std::move(predictions));

    // Reweight: w_i *= exp(-alpha * y_i * h_i), then renormalise.
    const BitVector& preds = round_predictions.back();
    double new_total = 0.0;
    if (config.word_parallel) {
      // agreement is +-1, so exp(-alpha * agreement) takes only two values;
      // the whole pass becomes a branchless multiply steered by the
      // disagreement bit (exp(-alpha * +-1.0) == exp(-+alpha) exactly).
      // The multiplies are elementwise and therefore exact at any SIMD
      // width; the renormalisation total is summed afterwards in ascending
      // index order — the same terms in the same order as the scalar loop,
      // so the doubles are identical.
      word_ops().scale_by_mask(disagreement.words(), n, std::exp(-alpha),
                               std::exp(alpha), weights.data());
      for (const double w : weights) new_total += w;
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        const double agreement = (preds.get(i) == targets.get(i)) ? 1.0 : -1.0;
        weights[i] *= std::exp(-alpha * agreement);
        new_total += weights[i];
      }
    }
    POETBIN_CHECK(new_total > 0.0);
    for (auto& w : weights) w /= new_total;
  }

  result.mat = MatModule(std::move(alphas));

  // Combined prediction per training example.
  result.train_predictions = BitVector(n);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t combo = 0;
    for (std::size_t r = 0; r < round_predictions.size(); ++r) {
      if (round_predictions[r].get(i)) combo |= std::size_t{1} << r;
    }
    const bool decision = result.mat.eval_combo(combo);
    if (decision) result.train_predictions.set(i, true);
    if (decision != targets.get(i)) ++errors;
  }
  result.train_error = static_cast<double>(errors) / static_cast<double>(n);
  return result;
}

bool adaboost_decision(const MatModule& mat, std::size_t combo) {
  return mat.eval_combo(combo);
}

}  // namespace poetbin
