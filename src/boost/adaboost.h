// Discrete Adaboost over an abstract weak learner.
//
// Used twice by the paper: within a subgroup (boosting P RINC-0 trees into
// a RINC-1) and across subgroups (boosting P RINC-(l-1) modules into a
// RINC-l) — the "hierarchical Adaboost" of Algorithm 2. The weak learner is
// injected as a callback so the same loop serves LevelDT, ClassicDt and
// recursive RINC modules.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "boost/mat.h"
#include "util/bitvector.h"

namespace poetbin {

struct AdaboostConfig {
  // Per-MAT round count; at most 64 (the combined prediction packs one bit
  // per round into a 64-bit combo mask).
  std::size_t n_rounds = 6;
  // epsilon is clamped to [clamp, 1 - clamp] before computing alpha, which
  // caps |alpha| and keeps perfect weak learners from collapsing weights.
  double epsilon_clamp = 1e-6;
  // Word-parallel error/reweight loops: the round's disagreement mask is one
  // preds ^ targets pass, epsilon is a masked weighted sum over the mask
  // words, and the exp-reweight collapses to two precomputed factors chosen
  // per bit — no per-example exp(). Bit-identical to the scalar loops,
  // which remain as the test reference.
  bool word_parallel = true;
};

struct AdaboostRoundStats {
  double alpha = 0.0;
  double weighted_error = 0.0;  // epsilon of this round's weak classifier
};

struct AdaboostResult {
  MatModule mat;                            // alphas of all rounds
  std::vector<AdaboostRoundStats> rounds;   // per-round diagnostics
  BitVector train_predictions;              // boosted prediction per example
  double train_error = 0.0;                 // unweighted, on the training set
};

// Trains one weak classifier under `weights` for the given round and returns
// its {0,1} predictions on all training examples. Implementations own the
// trained classifier (e.g. push it into a vector).
using WeakTrainFn =
    std::function<BitVector(std::span<const double> weights, std::size_t round)>;

// Runs discrete Adaboost: weights start uniform (or `initial_weights` if
// non-empty), each round reweights by exp(-alpha * y * h).
AdaboostResult run_adaboost(const BitVector& targets, WeakTrainFn train_weak,
                            const AdaboostConfig& config,
                            std::span<const double> initial_weights = {});

// The boosted decision for one example given the per-round predictions
// packed as a combo bitmask (bit i = round i's output).
bool adaboost_decision(const MatModule& mat, std::size_t combo);

}  // namespace poetbin
