// Zipfian load generator for the PoET-BiN network serving front end.
//
//   loadgen <host> <port> [--threads=8] [--duration=5] [--theta=0.99]
//           [--keys=1024] [--seed=42] [--pipeline=16] [--json=FILE]
//           [--allow-repin] [--reload-at=SECONDS] [--min-hit-rate=F]
//
// Probes the server with a kInfo request for the model's feature width,
// builds a deterministic pool of random keys, then drives it from
// --threads closed-loop clients. Each client pipelines bursts of
// --pipeline predict requests over its own connection, sampling keys from
// FastZipf(--theta) so a handful of keys take most of the traffic (the
// YCSB-style serving skew). Burst latency is sampled per round trip.
//
// The generator also acts as a consistency check: the first prediction
// seen for each key is pinned, and any later disagreement for the same
// key counts as an error. Exit status is nonzero when any request failed,
// any prediction flapped, or nothing was served at all, so CI can gate on
// the exit code alone. --json additionally writes a flat metrics object
// (requests, errors, repins, throughput_rps, p50/p99/p999_ms) for jq
// assertions.
//
// Hot-reload drills: --reload-at=T sends one kReload frame T seconds into
// the run (a failed swap counts as an error), and --allow-repin tolerates
// an INTENTIONAL mid-run model swap — a disagreeing prediction re-pins the
// key and bumps the `repins` counter instead of erroring, so the
// flap-detector stays armed for everything except the swap itself.
//
// After the run, one kStats frame reads the server-side counters and the
// prediction-cache hit rate lands on stdout and in the JSON (cache_hits,
// cache_misses, cache_hit_rate). Under SO_REUSEPORT sharding the frame
// samples whichever worker accepts the connection, not the shard group.
// --min-hit-rate=F additionally fails the run (nonzero exit) when the
// sampled hit rate comes in below F — the CI gate that proves the cache is
// actually absorbing the zipf head.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/net_client.h"
#include "serve/protocol.h"
#include "util/bitvector.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace {

using namespace poetbin;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string host;
  std::uint16_t port = 0;
  std::size_t threads = 8;
  double duration_s = 5.0;
  double theta = 0.99;
  std::size_t keys = 1024;
  std::uint64_t seed = 42;
  std::size_t pipeline = 16;
  std::string json_path;
  bool allow_repin = false;
  double reload_at_s = -1.0;    // < 0: never send a kReload
  double min_hit_rate = -1.0;   // < 0: don't gate on the cache hit rate
};

struct ThreadResult {
  std::size_t requests = 0;
  std::size_t errors = 0;
  std::size_t repins = 0;
  std::vector<double> latencies_ms;
};

bool parse_flag(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <host> <port> [--threads=N] [--duration=SECONDS]\n"
               "       [--theta=T] [--keys=K] [--seed=S] [--pipeline=D] "
               "[--json=FILE]\n"
               "       [--allow-repin] [--reload-at=SECONDS] "
               "[--min-hit-rate=F]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Options* options) {
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (parse_flag(argv[i], "--threads=", &value)) {
      options->threads = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--duration=", &value)) {
      options->duration_s = std::strtod(value.c_str(), nullptr);
    } else if (parse_flag(argv[i], "--theta=", &value)) {
      options->theta = std::strtod(value.c_str(), nullptr);
    } else if (parse_flag(argv[i], "--keys=", &value)) {
      options->keys = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--seed=", &value)) {
      options->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--pipeline=", &value)) {
      options->pipeline = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--json=", &value)) {
      options->json_path = value;
    } else if (std::strcmp(argv[i], "--allow-repin") == 0) {
      options->allow_repin = true;
    } else if (parse_flag(argv[i], "--reload-at=", &value)) {
      options->reload_at_s = std::strtod(value.c_str(), nullptr);
      if (options->reload_at_s < 0.0) {
        std::fprintf(stderr, "bad --reload-at value: %s\n", value.c_str());
        return false;
      }
    } else if (parse_flag(argv[i], "--min-hit-rate=", &value)) {
      options->min_hit_rate = std::strtod(value.c_str(), nullptr);
      if (options->min_hit_rate < 0.0 || options->min_hit_rate > 1.0) {
        std::fprintf(stderr, "bad --min-hit-rate value: %s\n", value.c_str());
        return false;
      }
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() != 2) return false;
  options->host = positional[0];
  const long port = std::strtol(positional[1], nullptr, 10);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "bad port: %s\n", positional[1]);
    return false;
  }
  options->port = static_cast<std::uint16_t>(port);
  if (options->threads < 1 || options->pipeline < 1 || options->keys < 1 ||
      options->duration_s <= 0.0) {
    std::fprintf(stderr, "threads/pipeline/keys/duration must be positive\n");
    return false;
  }
  return true;
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t at = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
  return sorted[at];
}

void run_client(const Options& options, const std::vector<BitVector>& pool,
                std::size_t thread_id, Clock::time_point deadline,
                std::vector<int>* pinned, std::atomic<bool>* abort,
                ThreadResult* result) {
  NetClient client;
  std::string error;
  if (!client.connect(options.host, options.port,
                      std::chrono::milliseconds(5000), &error)) {
    std::fprintf(stderr, "thread %zu: connect failed: %s\n", thread_id,
                 error.c_str());
    ++result->errors;
    return;
  }
  Rng seeder(options.seed);
  FastZipf zipf(seeder.fork(1000 + thread_id).next_u64(), options.theta,
                pool.size());
  std::vector<const BitVector*> burst(options.pipeline);
  std::vector<std::size_t> keys(options.pipeline);
  std::vector<wire::Response> responses;
  while (Clock::now() < deadline && !abort->load(std::memory_order_relaxed)) {
    for (std::size_t i = 0; i < options.pipeline; ++i) {
      keys[i] = zipf.next();
      burst[i] = &pool[keys[i]];
    }
    const auto s0 = Clock::now();
    if (!client.predict_pipelined(burst, &responses)) {
      std::fprintf(stderr, "thread %zu: pipelined round trip failed\n",
                   thread_id);
      result->errors += options.pipeline;
      return;
    }
    const auto s1 = Clock::now();
    result->latencies_ms.push_back(
        1e3 * std::chrono::duration<double>(s1 - s0).count());
    result->requests += options.pipeline;
    for (std::size_t i = 0; i < options.pipeline; ++i) {
      if (responses[i].status != wire::Status::kOk) {
        std::fprintf(stderr, "thread %zu: predict rejected: %s\n", thread_id,
                     wire::status_name(responses[i].status));
        ++result->errors;
        continue;
      }
      // Benign data race by design: pins are per-key ints written without a
      // lock. Any interleaving still only ever stores a served prediction,
      // so a flapping server is flagged, a stable one never is.
      int& pin = (*pinned)[keys[i]];
      const int got = responses[i].prediction;
      if (pin < 0) {
        pin = got;
      } else if (pin != got) {
        if (options.allow_repin) {
          // An intentional model swap is in play: adopt the new answer.
          // Responses already in flight on the old version may re-pin the
          // key back and forth briefly; each flip is one repin, never an
          // error.
          pin = got;
          ++result->repins;
        } else {
          std::fprintf(stderr,
                       "thread %zu: key %zu flapped: saw class %d then %d\n",
                       thread_id, keys[i], pin, got);
          ++result->errors;
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, &options)) return usage(argv[0]);

  // Probe the server for the model's input width.
  NetClient probe;
  std::string error;
  if (!probe.connect(options.host, options.port,
                     std::chrono::milliseconds(5000), &error)) {
    std::fprintf(stderr, "connect %s:%u failed: %s\n", options.host.c_str(),
                 options.port, error.c_str());
    return 1;
  }
  wire::Response info;
  if (!probe.info(&info) || info.status != wire::Status::kOk) {
    std::fprintf(stderr, "info request failed\n");
    return 1;
  }
  std::printf("server %s:%u: %u features, %u classes\n", options.host.c_str(),
              options.port, info.n_features, info.n_classes);

  // Deterministic key pool: same --seed, same traffic.
  Rng rng(options.seed);
  std::vector<BitVector> pool;
  pool.reserve(options.keys);
  for (std::size_t k = 0; k < options.keys; ++k) {
    BitVector bits(info.n_features);
    Rng key_rng = rng.fork(k);
    for (std::size_t w = 0; w < bits.word_count(); ++w) {
      bits.words()[w] = key_rng.next_u64();
    }
    bits.mask_tail_word();
    pool.push_back(std::move(bits));
  }

  std::printf("driving %zu thread(s), pipeline %zu, zipf theta %.2f over "
              "%zu keys for %.1fs...\n",
              options.threads, options.pipeline, options.theta, options.keys,
              options.duration_s);
  std::vector<ThreadResult> results(options.threads);
  std::vector<int> pinned(options.keys, -1);
  std::atomic<bool> abort{false};
  std::vector<std::thread> clients;
  clients.reserve(options.threads);
  const auto t0 = Clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(options.duration_s));
  for (std::size_t t = 0; t < options.threads; ++t) {
    clients.emplace_back(run_client, std::cref(options), std::cref(pool), t,
                         deadline, &pinned, &abort, &results[t]);
  }

  // Mid-run hot-reload trigger: one kReload frame on its own connection at
  // the requested offset, while the client threads keep hammering predicts.
  std::atomic<std::size_t> reload_errors{0};
  std::thread reloader;
  if (options.reload_at_s >= 0.0) {
    reloader = std::thread([&options, t0, &reload_errors] {
      std::this_thread::sleep_until(
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(options.reload_at_s)));
      NetClient client;
      wire::Response response;
      if (!client.connect(options.host, options.port,
                          std::chrono::milliseconds(5000)) ||
          !client.reload(&response) ||
          response.status != wire::Status::kOk) {
        std::fprintf(stderr, "reload at %.1fs failed%s\n", options.reload_at_s,
                     client.connected()
                         ? (std::string(": ") +
                            wire::status_name(response.status)).c_str()
                         : ": connect/transport error");
        reload_errors.fetch_add(1);
        return;
      }
      std::printf("reload at %.1fs: server now at model version %llu\n",
                  options.reload_at_s,
                  static_cast<unsigned long long>(response.model_version));
    });
  }

  for (auto& client : clients) client.join();
  if (reloader.joinable()) reloader.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  std::size_t requests = 0, errors = 0, repins = 0;
  std::vector<double> latencies;
  for (const ThreadResult& r : results) {
    requests += r.requests;
    errors += r.errors;
    repins += r.repins;
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
  }
  errors += reload_errors.load();
  std::sort(latencies.begin(), latencies.end());
  const double rps = elapsed_s > 0.0
                         ? static_cast<double>(requests) / elapsed_s
                         : 0.0;
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  const double p999 = percentile(latencies, 0.999);

  std::printf("%zu requests in %.2fs: %.0f req/s, %zu error(s), "
              "%zu repin(s)\n",
              requests, elapsed_s, rps, errors, repins);
  std::printf("burst latency p50 %.3f ms  p99 %.3f ms  p999 %.3f ms\n", p50,
              p99, p999);

  // Read the server-side counters back over a fresh connection. Under
  // sharding this samples ONE worker (whichever the kernel routes this
  // connection to), which is enough to see whether the cache is working.
  std::uint64_t cache_hits = 0, cache_misses = 0;
  double hit_rate = 0.0;
  bool have_stats = false;
  {
    NetClient stats_client;
    wire::Response stats_resp;
    if (stats_client.connect(options.host, options.port,
                             std::chrono::milliseconds(5000)) &&
        stats_client.query_stats(&stats_resp) &&
        stats_resp.status == wire::Status::kOk) {
      have_stats = true;
      cache_hits = stats_resp.stats.cache_hits;
      cache_misses = stats_resp.stats.cache_misses;
      hit_rate = stats_resp.stats.cache_hit_rate();
      std::printf("server cache: %llu hits / %llu misses (%.1f%% hit rate)\n",
                  static_cast<unsigned long long>(cache_hits),
                  static_cast<unsigned long long>(cache_misses),
                  100.0 * hit_rate);
    } else {
      std::fprintf(stderr, "stats query failed; cache counters unavailable\n");
    }
  }
  bool hit_rate_ok = true;
  if (options.min_hit_rate >= 0.0 &&
      (!have_stats || hit_rate < options.min_hit_rate)) {
    std::fprintf(stderr, "cache hit rate %.4f below required %.4f\n",
                 hit_rate, options.min_hit_rate);
    hit_rate_ok = false;
  }

  if (!options.json_path.empty()) {
    std::FILE* out = std::fopen(options.json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", options.json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\"requests\": %zu, \"errors\": %zu, \"repins\": %zu, "
                 "\"throughput_rps\": %.1f, \"p50_ms\": %.4f, "
                 "\"p99_ms\": %.4f, \"p999_ms\": %.4f, "
                 "\"cache_hits\": %llu, \"cache_misses\": %llu, "
                 "\"cache_hit_rate\": %.4f}\n",
                 requests, errors, repins, rps, p50, p99, p999,
                 static_cast<unsigned long long>(cache_hits),
                 static_cast<unsigned long long>(cache_misses), hit_rate);
    std::fclose(out);
    std::printf("wrote %s\n", options.json_path.c_str());
  }
  return (errors == 0 && requests > 0 && hit_rate_ok) ? 0 : 1;
}
