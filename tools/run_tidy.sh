#!/usr/bin/env bash
# clang-tidy driver over the CMake compile database.
#
# Usage:
#   tools/run_tidy.sh [--all] [--build-dir DIR] [--base REF]
#
#   default      lint only files changed vs --base (origin/main if present,
#                else HEAD~1) — the fast path for PR branches
#   --all        lint every first-party translation unit (CI runs this on
#                pushes to main)
#   --build-dir  build tree holding compile_commands.json
#                (default: build; CMAKE_EXPORT_COMPILE_COMMANDS is on by
#                default in CMakeLists.txt)
#
# Exits 0 with a notice when clang-tidy is not installed, so local
# Release-only environments are not blocked; CI installs clang-tidy and
# treats any diagnostic as an error (.clang-tidy sets WarningsAsErrors).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build"
mode="changed"
base_ref=""

while [[ $# -gt 0 ]]; do
  case "$1" in
    --all) mode="all"; shift ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --base) base_ref="$2"; shift 2 ;;
    -h|--help) sed -n '2,18p' "$0"; exit 0 ;;
    *) echo "run_tidy.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
done

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${tidy_bin}" >/dev/null 2>&1; then
  echo "run_tidy.sh: ${tidy_bin} not found; skipping (CI runs the real check)"
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_tidy.sh: ${build_dir}/compile_commands.json missing." >&2
  echo "Configure first: cmake -B '${build_dir}' (export is on by default)." >&2
  exit 2
fi

cd "${repo_root}"

# First-party translation units only; _deps/ (GoogleTest) is not ours.
list_all() {
  git ls-files 'src/**/*.cpp' 'tests/*.cpp' 'bench/*.cpp' 'examples/*.cpp'
}

list_changed() {
  local base="${base_ref}"
  if [[ -z "${base}" ]]; then
    if git rev-parse --verify -q origin/main >/dev/null; then
      base="$(git merge-base HEAD origin/main)"
    else
      base="HEAD~1"
    fi
  fi
  # Changed headers pull in every TU that includes them; approximate with a
  # grep over includes so a header-only change still gets its users linted.
  local files headers
  files="$(git diff --name-only --diff-filter=d "${base}" -- \
             'src/**/*.cpp' 'tests/*.cpp' 'bench/*.cpp' 'examples/*.cpp')"
  headers="$(git diff --name-only --diff-filter=d "${base}" -- \
               'src/**/*.h' 'tests/*.h')"
  if [[ -n "${headers}" ]]; then
    local header users
    while IFS= read -r header; do
      [[ -z "${header}" ]] && continue
      users="$(grep -rl --include='*.cpp' -F "$(basename "${header}")" \
                 src tests bench examples 2>/dev/null || true)"
      files="$(printf '%s\n%s' "${files}" "${users}")"
    done <<< "${headers}"
  fi
  printf '%s\n' "${files}" | sed '/^$/d' | sort -u
}

if [[ "${mode}" == "all" ]]; then
  mapfile -t targets < <(list_all)
else
  mapfile -t targets < <(list_changed)
fi

if [[ ${#targets[@]} -eq 0 ]]; then
  echo "run_tidy.sh: no first-party sources to lint (mode=${mode})"
  exit 0
fi

echo "run_tidy.sh: linting ${#targets[@]} file(s) (mode=${mode})"
status=0
for tu in "${targets[@]}"; do
  # Keep going after a failure so one run reports every offending file.
  if ! "${tidy_bin}" -p "${build_dir}" --quiet "${tu}"; then
    status=1
    echo "run_tidy.sh: FAILED ${tu}" >&2
  fi
done
exit "${status}"
