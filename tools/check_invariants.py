#!/usr/bin/env python3
"""Project-invariant linter: statically enforce rules the codebase learned
the hard way.

Usage:
  check_invariants.py [--root DIR]     # lint the tree (default: repo root)
  check_invariants.py --self-test      # prove every rule fires on a seeded
                                       # violation and passes a clean tree

Rules (each with the incident that motivated it):

  memory-order-comment   Every `std::memory_order_*` use carries an
                         adjacent `// order:` justification (same line or
                         within the 6 lines above). The PR 8 cache audit
                         showed undocumented orderings rot into cargo-cult
                         relaxed loads nobody dares touch.
  atomic-model-publish   Model artifacts (*.pbm) are pushed with the atomic
                         temp+rename writers / `mv`, never `cp`-in-place:
                         overwriting a mapped packed model truncates the
                         inode under the serving workers and SIGBUSes them
                         (PR 7). Scans scripts, CI and docs.
  no-batched-shims       The removed `*_batched(..., n_threads)` shim
                         signatures never reappear — they constructed a
                         thread pool per call (PR 5's churn bug); callers
                         pass a BatchEngine.
  frame-payload-bound    Byte-size constants declared in the wire protocol
                         stay within kMaxFramePayload; a constant that
                         outgrows the frame cap would make the server
                         reject its own responses.
  no-rand-time           No `rand()`/`srand()`/`time()` in src/: every
                         library path is deterministic and seeded (the
                         bit-identity test strategy depends on it). Clocks
                         for timeouts use <chrono> steady_clock.
  tsan-supp-clean        tsan.supp never suppresses a `poetbin::` frame — a
                         race in our code is fixed or annotated at the
                         source, not muted.

Exit codes: 0 clean, 1 violations found, 2 usage/internal error.
Suppress a single line with `// invariants: allow-<rule>` (C++) or
`# invariants: allow-<rule>` (scripts/yaml) plus a reason.
"""

import argparse
import os
import re
import sys
import tempfile

CXX_EXTENSIONS = (".cpp", ".h", ".cc", ".hpp")
SCRIPT_EXTENSIONS = (".sh", ".py", ".yml", ".yaml", ".md", ".cmake")

# memory-order-comment: how many preceding lines may hold the `// order:`
# justification (multi-line statements and small audited blocks).
ORDER_COMMENT_WINDOW = 6


class Violation:
    def __init__(self, rule, path, line_no, message):
        self.rule = rule
        self.path = path
        self.line_no = line_no
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def allow_marker(rule, line):
    return f"invariants: allow-{rule}" in line


def iter_files(root, subdirs, extensions):
    self_path = os.path.abspath(__file__)
    for subdir in subdirs:
        base = os.path.join(root, subdir)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in dirnames if not d.startswith(".")]
            for name in sorted(filenames):
                if not name.endswith(extensions):
                    continue
                path = os.path.join(dirpath, name)
                # The linter's own self-test seeds contain every violation.
                if os.path.abspath(path) == self_path:
                    continue
                yield path


def read_lines(path):
    with open(path, encoding="utf-8", errors="replace") as handle:
        return handle.read().splitlines()


def relpath(root, path):
    return os.path.relpath(path, root)


# --- rule: memory-order-comment ---------------------------------------------

def check_memory_order_comment(root):
    violations = []
    pattern = re.compile(r"\bmemory_order_\w+")
    for path in iter_files(root, ["src"], CXX_EXTENSIONS):
        lines = read_lines(path)
        for i, line in enumerate(lines):
            if not pattern.search(line):
                continue
            if allow_marker("memory-order-comment", line):
                continue
            window = lines[max(0, i - ORDER_COMMENT_WINDOW):i + 1]
            if any("// order:" in w for w in window):
                continue
            violations.append(Violation(
                "memory-order-comment", relpath(root, path), i + 1,
                "memory_order_* without an adjacent '// order:' comment "
                "justifying the ordering"))
    return violations


# --- rule: atomic-model-publish ---------------------------------------------

# A `cp` (or shutil.copy*) whose arguments mention a packed-model artifact.
# Copying onto a mapped .pbm truncates the readers' inode; pushes must go
# through the temp+rename writers or `mv`.
CP_PBM = re.compile(r"\bcp\b[^\n|&;]*\.pbm\b")
SHUTIL_COPY_PBM = re.compile(r"shutil\.copy\w*\([^)]*\.pbm")


def check_atomic_model_publish(root):
    violations = []
    files = list(iter_files(root, ["tools", ".github", "docs"],
                            SCRIPT_EXTENSIONS))
    for name in ("README.md", "ROADMAP.md", "CONTRIBUTING.md"):
        path = os.path.join(root, name)
        if os.path.isfile(path):
            files.append(path)
    for path in files:
        for i, line in enumerate(read_lines(path)):
            if allow_marker("atomic-model-publish", line):
                continue
            if CP_PBM.search(line) or SHUTIL_COPY_PBM.search(line):
                violations.append(Violation(
                    "atomic-model-publish", relpath(root, path), i + 1,
                    "model artifact pushed with cp/copy — use the atomic "
                    "temp+rename writers or `mv` (cp-in-place SIGBUSes "
                    "workers mapping the old inode)"))
    return violations


# --- rule: no-batched-shims -------------------------------------------------

BATCHED_SHIM = re.compile(r"\w+_batched\s*\([^)]*\bn_threads\b")


def check_no_batched_shims(root):
    violations = []
    for path in iter_files(root, ["src", "tests", "bench", "examples",
                                  "tools"], CXX_EXTENSIONS):
        for i, line in enumerate(read_lines(path)):
            if allow_marker("no-batched-shims", line):
                continue
            if BATCHED_SHIM.search(line):
                violations.append(Violation(
                    "no-batched-shims", relpath(root, path), i + 1,
                    "the *_batched(n_threads) shim signature was removed "
                    "(per-call thread-pool churn); pass a BatchEngine"))
    return violations


# --- rule: frame-payload-bound ----------------------------------------------

CONSTEXPR_BYTES = re.compile(
    r"constexpr\s+[\w:<>\s]+\s(k\w*(?:Payload|Bytes|Size|Len)\w*)\s*=\s*"
    r"([0-9][0-9a-fA-FxXuUlL'<>\s]*);")


def parse_int_expr(expr):
    """Parse `1u << 20`-style constant expressions; None if unsupported."""
    expr = expr.replace("'", "").strip()
    expr = re.sub(r"(?<=[0-9a-fA-FxX])[uUlL]+\b", "", expr)
    shift = re.fullmatch(r"(\S+)\s*<<\s*(\S+)", expr)
    try:
        if shift:
            return int(shift.group(1), 0) << int(shift.group(2), 0)
        return int(expr, 0)
    except ValueError:
        return None


def check_frame_payload_bound(root, protocol_header="src/serve/protocol.h"):
    violations = []
    path = os.path.join(root, protocol_header)
    if not os.path.isfile(path):
        violations.append(Violation(
            "frame-payload-bound", protocol_header, 0,
            "wire-protocol header not found (rule needs updating if the "
            "protocol moved)"))
        return violations
    lines = read_lines(path)
    constants = {}
    for i, line in enumerate(lines):
        match = CONSTEXPR_BYTES.search(line)
        if not match:
            continue
        value = parse_int_expr(match.group(2))
        if value is not None:
            constants[match.group(1)] = (value, i + 1)
    if "kMaxFramePayload" not in constants:
        violations.append(Violation(
            "frame-payload-bound", relpath(root, path), 0,
            "kMaxFramePayload not found or not parseable"))
        return violations
    cap = constants["kMaxFramePayload"][0]
    for name, (value, line_no) in constants.items():
        if name == "kMaxFramePayload":
            continue
        if allow_marker("frame-payload-bound", lines[line_no - 1]):
            continue
        if value > cap:
            violations.append(Violation(
                "frame-payload-bound", relpath(root, path), line_no,
                f"{name} = {value} exceeds kMaxFramePayload = {cap}; the "
                "server would reject its own frames"))
    return violations


# --- rule: no-rand-time -----------------------------------------------------

RAND_TIME = re.compile(r"(?<![\w:])(?:std::)?(rand|srand|time)\s*\(")


def check_no_rand_time(root):
    violations = []
    for path in iter_files(root, ["src"], CXX_EXTENSIONS):
        for i, line in enumerate(read_lines(path)):
            if allow_marker("no-rand-time", line):
                continue
            code = line.split("//", 1)[0]
            match = RAND_TIME.search(code)
            if match:
                violations.append(Violation(
                    "no-rand-time", relpath(root, path), i + 1,
                    f"{match.group(1)}() in src/ breaks the determinism "
                    "rule — seed an util/rng.h Rng, or use <chrono> "
                    "steady_clock for timeouts"))
    return violations


# --- rule: tsan-supp-clean --------------------------------------------------

def check_tsan_supp_clean(root):
    violations = []
    path = os.path.join(root, "tsan.supp")
    if not os.path.isfile(path):
        violations.append(Violation(
            "tsan-supp-clean", "tsan.supp", 0,
            "tsan.supp missing — the TSan CI leg points TSAN_OPTIONS at it"))
        return violations
    for i, line in enumerate(read_lines(path)):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if "poetbin::" in stripped:
            violations.append(Violation(
                "tsan-supp-clean", "tsan.supp", i + 1,
                "suppression names a poetbin:: frame — fix or annotate the "
                "race at the source instead of muting it"))
    return violations


RULES = [
    check_memory_order_comment,
    check_atomic_model_publish,
    check_no_batched_shims,
    check_frame_payload_bound,
    check_no_rand_time,
    check_tsan_supp_clean,
]


def run_all(root):
    violations = []
    for rule in RULES:
        violations.extend(rule(root))
    return violations


# --- self-test ---------------------------------------------------------------

def write(root, rel, content):
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)


CLEAN_PROTOCOL = (
    "inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;\n"
    "inline constexpr std::size_t kFrameHeaderSize = 4;\n"
)


def seed_clean_tree(root):
    write(root, "src/serve/protocol.h", CLEAN_PROTOCOL)
    write(root, "src/core/good.cpp",
          "// order: relaxed - statistics counter only.\n"
          "n.fetch_add(1, std::memory_order_relaxed);\n")
    write(root, "tools/push.sh", "mv model.tmp.$$ model.pbm\n")
    write(root, "tsan.supp", "# no suppressions\n")


# (rule name, relative path, file content) — one seeded violation per rule.
SELF_TEST_VIOLATIONS = [
    ("memory-order-comment", "src/core/bad_order.cpp",
     "epoch_.store(v, std::memory_order_release);\n"),
    ("atomic-model-publish", ".github/workflows/bad_push.yml",
     "      - run: cp new_model.pbm /srv/models/live.pbm\n"),
    ("no-batched-shims", "src/core/bad_shim.h",
     "std::vector<int> predict_dataset_batched(const BitMatrix& x, "
     "std::size_t n_threads);\n"),
    ("frame-payload-bound", "src/serve/protocol.h",
     CLEAN_PROTOCOL +
     "inline constexpr std::uint32_t kStatsPayloadBytes = 1u << 21;\n"),
    ("no-rand-time", "src/core/bad_rand.cpp",
     "int jitter = rand() % 100;\n"),
    ("tsan-supp-clean", "tsan.supp",
     "race:poetbin::PredictCache::probe\n"),
]


def self_test():
    failures = []
    with tempfile.TemporaryDirectory() as root:
        seed_clean_tree(root)
        clean = run_all(root)
        if clean:
            failures.append("clean tree reported violations:\n  " +
                            "\n  ".join(str(v) for v in clean))
        for rule, rel, content in SELF_TEST_VIOLATIONS:
            with tempfile.TemporaryDirectory() as seeded_root:
                seed_clean_tree(seeded_root)
                write(seeded_root, rel, content)
                found = [v for v in run_all(seeded_root) if v.rule == rule]
                if not found:
                    failures.append(
                        f"rule '{rule}' did not fire on seeded violation "
                        f"in {rel}")
                other = [v for v in run_all(seeded_root) if v.rule != rule]
                if other:
                    failures.append(
                        f"seeding '{rule}' tripped unrelated rules: " +
                        "; ".join(str(v) for v in other))
        # The allow-marker must silence exactly the marked line.
        with tempfile.TemporaryDirectory() as seeded_root:
            seed_clean_tree(seeded_root)
            write(seeded_root, "src/core/allowed.cpp",
                  "x.store(1, std::memory_order_relaxed);"
                  "  // invariants: allow-memory-order-comment (test)\n")
            if run_all(seeded_root):
                failures.append("allow-marker did not suppress the rule")
    if failures:
        print("SELF-TEST FAILED:")
        for failure in failures:
            print("  " + failure)
        return 1
    print(f"self-test OK: all {len(SELF_TEST_VIOLATIONS)} rules fire on "
          "seeded violations and pass a clean tree")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="PoET-BiN project-invariant linter")
    parser.add_argument("--root", default=None,
                        help="repository root (default: this script's "
                             "parent's parent)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on a seeded violation")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"error: '{root}' does not look like the repo root "
              "(no src/)", file=sys.stderr)
        return 2

    violations = run_all(root)
    if violations:
        for violation in violations:
            print(violation)
        print(f"\nFAIL: {len(violations)} invariant violation(s). See "
              "tools/check_invariants.py --help for the rules and the "
              "allow-marker escape hatch.")
        return 1
    print(f"OK: {len(RULES)} invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
