#!/usr/bin/env python3
"""Diff two bench_results.json artifacts and fail on throughput regression.

Usage: bench_diff.py PREVIOUS CURRENT [--threshold 0.15]

Exit codes: 0 no regression, 1 regression found, 2 a file is missing or
malformed (truncated artifact download, non-array JSON) — distinct so CI
can retry the artifact instead of reporting a phantom perf failure.

Each file is the CI artifact: a JSON array of per-bench objects
  {"bench": "batch_eval", "scale": 0.25, "metrics": {"<key>": <value>, ...}}

Only *_ms metrics are compared (wall-clock of a timed section; larger is
worse). A metric regresses when current > previous * (1 + threshold).
Metrics present in only one file are reported but never fail the gate, so
adding or renaming bench rows doesn't break CI; speedup/ratio keys are
informational and skipped. Tail-latency keys (*_p999_ms) are reported but
never gated: a p999 on a shared CI runner is one noisy sample, not a
regression signal. If the two runs used different scales the
comparison is skipped entirely (the numbers are not comparable).

Backend-suffixed keys (*_scalar64_ms / *_avx2_ms / *_avx512_ms /
*_neon_ms) time one specific backend, so they are comparable whenever both
runs have them.
Unsuffixed keys time whatever backend the runner dispatched to by default:
when the two runs report different `backends_mask` values (shared CI
runners with different CPUs), the unsuffixed keys are skipped instead of
failing the gate on a hardware change.
"""

import argparse
import json
import sys


class MalformedArtifact(Exception):
    """A bench_results.json that exists but cannot be interpreted."""


def load_metrics(path):
    try:
        with open(path, encoding="utf-8") as handle:
            entries = json.load(handle)
    except json.JSONDecodeError as err:
        raise MalformedArtifact(f"{path} is not valid JSON: {err}") from err
    if not isinstance(entries, list):
        raise MalformedArtifact(
            f"{path}: expected a JSON array of bench entries, got "
            f"{type(entries).__name__}")
    metrics = {}
    scales = {}
    for entry in entries:
        if not isinstance(entry, dict):
            raise MalformedArtifact(
                f"{path}: bench entry is {type(entry).__name__}, not an "
                f"object")
        bench = entry.get("bench", "?")
        scales[bench] = entry.get("scale")
        for key, value in entry.get("metrics", {}).items():
            metrics[f"{bench}.{key}"] = value
    return metrics, scales


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("previous")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="fractional slowdown that fails the gate")
    args = parser.parse_args()

    # Exit 2 (not 1) on a malformed artifact: 1 means "benches regressed",
    # and CI must be able to tell a broken previous-run download (retry /
    # reseed the artifact) from a real performance failure.
    try:
        prev, prev_scales = load_metrics(args.previous)
        curr, curr_scales = load_metrics(args.current)
    except MalformedArtifact as err:
        print(f"error: malformed bench artifact: {err}", file=sys.stderr)
        return 2

    for bench, scale in curr_scales.items():
        if bench in prev_scales and prev_scales[bench] != scale:
            print(f"scale changed for '{bench}' "
                  f"({prev_scales[bench]} -> {scale}); skipping comparison")
            return 0

    backend_suffixes = ("_scalar64_ms", "_avx2_ms", "_avx512_ms", "_neon_ms")
    hardware_changed = set()
    for bench in curr_scales:
        mask_key = f"{bench}.backends_mask"
        if (mask_key in prev and mask_key in curr
                and prev[mask_key] != curr[mask_key]):
            hardware_changed.add(bench)
            print(f"runner backend set changed for '{bench}' "
                  f"({prev[mask_key]:.0f} -> {curr[mask_key]:.0f}); "
                  f"comparing only backend-suffixed keys")

    regressions = []
    print(f"{'metric':<48} {'prev':>10} {'curr':>10} {'delta':>8}")
    for key in sorted(curr):
        if not key.endswith("_ms"):
            continue
        if (key.split(".", 1)[0] in hardware_changed
                and not key.endswith(backend_suffixes)):
            continue
        if key not in prev:
            print(f"{key:<48} {'-':>10} {curr[key]:>10.3f}   (new)")
            continue
        old, new = prev[key], curr[key]
        delta = (new - old) / old if old > 0 else 0.0
        flag = ""
        if key.endswith("_p999_ms"):
            print(f"{key:<48} {old:>10.3f} {new:>10.3f} {delta:>+7.1%}"
                  f"   (informational)")
            continue
        if delta > args.threshold:
            flag = "  << REGRESSION"
            regressions.append((key, old, new, delta))
        print(f"{key:<48} {old:>10.3f} {new:>10.3f} {delta:>+7.1%}{flag}")

    dropped = [k for k in sorted(prev) if k.endswith("_ms") and k not in curr]
    for key in dropped:
        print(f"{key:<48} {prev[key]:>10.3f} {'-':>10}   (removed)")

    if regressions:
        print(f"\nFAIL: {len(regressions)} metric(s) slowed down more than "
              f"{args.threshold:.0%} vs the previous run:")
        for key, old, new, delta in regressions:
            print(f"  {key}: {old:.3f} ms -> {new:.3f} ms ({delta:+.1%})")
        return 1
    print(f"\nOK: no *_ms metric regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
